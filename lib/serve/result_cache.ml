(* Classic hashtable + doubly-linked recency list, behind one mutex.
   The list is cyclic through a sentinel node: sentinel.next is the
   most-recently-used entry, sentinel.prev the eviction candidate. *)

type node = {
  key : string;
  mutable body : string;
  mutable prev : node;
  mutable next : node;
}

type t = {
  capacity : int;
  tbl : (string, node) Hashtbl.t;
  sentinel : node;
  m : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~cap =
  if cap < 0 then invalid_arg "Result_cache.create: cap must be >= 0";
  let rec sentinel =
    { key = ""; body = ""; prev = sentinel; next = sentinel }
  in
  {
    capacity = cap;
    tbl = Hashtbl.create (max 16 cap);
    sentinel;
    m = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let cap t = t.capacity

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink n;
          push_front t n;
          Some n.body
      | None ->
          t.misses <- t.misses + 1;
          None)

let put t key body =
  if t.capacity > 0 then
    locked t (fun () ->
        (match Hashtbl.find_opt t.tbl key with
        | Some n ->
            n.body <- body;
            unlink n;
            push_front t n
        | None ->
            let n = { key; body; prev = t.sentinel; next = t.sentinel } in
            Hashtbl.replace t.tbl key n;
            push_front t n);
        while Hashtbl.length t.tbl > t.capacity do
          let lru = t.sentinel.prev in
          unlink lru;
          Hashtbl.remove t.tbl lru.key;
          t.evictions <- t.evictions + 1
        done)

let mem t key = locked t (fun () -> Hashtbl.mem t.tbl key)
let length t = locked t (fun () -> Hashtbl.length t.tbl)

let keys_mru t =
  locked t (fun () ->
      let acc = ref [] in
      let n = ref t.sentinel.prev in
      while !n != t.sentinel do
        acc := (!n).key :: !acc;
        n := (!n).prev
      done;
      !acc)

type stats = { hits : int; misses : int; evictions : int; size : int }

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.tbl;
      })
