(** Bounded admission in front of the engine's Domain pool.

    Tracks every admitted job from [Queued] through a terminal state,
    enforces the in-flight bound (queued + running) that produces the
    service's 429 backpressure, lets connection threads block until a
    job settles, and coordinates the graceful drain: once draining, no
    job is admitted and {!await_idle} returns when the last in-flight
    job has settled.

    All state is mutex-guarded; transitions broadcast a condition, so
    any number of waiters (one per watching connection) may block on the
    same job. Terminal jobs are pruned oldest-first past a retention
    bound, so a long-lived server's job table stays O(bound). *)

type state =
  | Queued
  | Running
  | Done of string  (** the canonical result JSON body *)
  | Failed of string
  | Timeout
  | Cancelled

val state_name : state -> string
(** ["queued"], ["running"], ["done"], ["failed"], ["timeout"],
    ["cancelled"]. *)

val is_terminal : state -> bool

type job = {
  id : int;
  spec : Bfdn_scenario.Scenario.t;
  fingerprint : string;
  timeout_s : float;
  stream : Bfdn_obs.Sink.Stream.t;  (** live trace frames of the run *)
  token : Bfdn_engine.Pool.token;
  trace : string;  (** correlation id minted at the HTTP edge *)
  span : Bfdn_obs.Span.t;
      (** the request's span recorder ({!Bfdn_obs.Span.disabled} when
          tracing is off) — serves [GET /jobs/:id/spans] *)
  root_span : Bfdn_obs.Span.id;  (** the request root span *)
  queue_span : Bfdn_obs.Span.id;
      (** opened by {!admit}, closed by the executor at
          {!mark_running}: admission-to-execution latency *)
  frames : Bfdn_obs.Json.t Bfdn_obs.Sink.Ring.t;
      (** last N trace frames, kept for the postmortem bundle (the
          consumable {!stream} cannot be replayed); written only by
          the executing worker *)
  mutable state : state;  (** read/written under the table's lock only *)
  mutable timed_out : bool;
      (** set (before cancelling the token) by the deadline check, so
          the executor can tell a timeout from an external cancel *)
  mutable postmortem : string option;
      (** path of the postmortem bundle, once the server wrote one *)
}

type t

val create : ?cap:int -> ?keep_terminal:int -> unit -> t
(** [cap] (default 64) bounds in-flight jobs; [keep_terminal] (default
    256) bounds retained settled jobs. @raise Invalid_argument when
    [cap < 1] or [keep_terminal < 0]. *)

val cap : t -> int

val admit :
  ?trace:string ->
  ?span:Bfdn_obs.Span.t ->
  ?parent:Bfdn_obs.Span.id ->
  t ->
  timeout_s:float ->
  fingerprint:string ->
  Bfdn_scenario.Scenario.t ->
  (job, [ `Full | `Draining ]) result
(** Register a fresh [Queued] job, or refuse: [`Full] is the 429 path
    (the caller never runs the job), [`Draining] the 503 path. [trace]
    (default [""]), [span] (default disabled) and [parent] thread the
    caller's correlation id and span recorder onto the job; admission
    opens the job's [queue] span under [parent]. *)

val find : t -> int -> job option

val mark_running : t -> job -> bool
(** Executor entry: [Queued → Running], recording the start. [false]
    when the job was cancelled while queued (the executor must skip
    it). *)

val settle : t -> job -> state -> unit
(** Transition to a terminal state, close the job's stream and wake
    every waiter. No-op if the job already settled (a drain-cancel and
    the executor can race). @raise Invalid_argument on a non-terminal
    argument. *)

val await : t -> job -> state
(** Block until the job settles; returns the terminal state. *)

val state : t -> job -> state

val inflight : t -> int
(** Jobs currently queued or running. *)

val retry_after_s : t -> int
(** Advisory [Retry-After] seconds for a 429: a crude half-timeout
    estimate, at least 1. *)

val drain : t -> unit
(** Stop admitting ([`Draining]) and cancel the tokens of still-queued
    jobs so the pool skips them; running jobs finish normally. *)

val draining : t -> bool

val await_idle : t -> unit
(** Block until no job is in flight (use after {!drain}). *)

val jobs_admitted : t -> int
(** Total jobs ever admitted. *)
