type request = {
  meth : string;
  target : string;
  path : string list;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

let header name r = List.assoc_opt (String.lowercase_ascii name) r.headers
let query_param name r = List.assoc_opt name r.query

(* ---- limits ---- *)

let max_line = 8192
let max_headers = 64
let max_body = 1 lsl 20

(* ---- reader ---- *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int; (* next unread byte *)
  mutable len : int; (* valid bytes in [buf] *)
}

let reader fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

(* Refill an empty buffer; false on EOF. *)
let refill r =
  r.pos <- 0;
  r.len <- Unix.read r.fd r.buf 0 (Bytes.length r.buf);
  r.len > 0

exception Bad of string

(* One CRLF- (or bare-LF-) terminated line, terminator stripped. *)
let input_line_exn r =
  let out = Buffer.create 64 in
  let rec go () =
    if r.pos >= r.len && not (refill r) then
      raise (Bad "unexpected end of stream");
    match Bytes.index_from_opt r.buf r.pos '\n' with
    | Some i when i < r.len ->
        Buffer.add_subbytes out r.buf r.pos (i - r.pos);
        r.pos <- i + 1
    | _ ->
        Buffer.add_subbytes out r.buf r.pos (r.len - r.pos);
        r.pos <- r.len;
        if Buffer.length out > max_line then raise (Bad "header line too long");
        go ()
  in
  go ();
  let line = Buffer.contents out in
  let n = String.length line in
  if Buffer.length out > max_line then raise (Bad "header line too long");
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let read_exact_exn r n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if r.pos >= r.len && not (refill r) then
      raise (Bad "unexpected end of stream in body");
    let take = min (n - !filled) (r.len - r.pos) in
    Bytes.blit r.buf r.pos out !filled take;
    r.pos <- r.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

let read_to_eof_exn r =
  let out = Buffer.create 1024 in
  let rec go () =
    if r.pos < r.len || refill r then begin
      Buffer.add_subbytes out r.buf r.pos (r.len - r.pos);
      r.pos <- r.len;
      go ()
    end
  in
  go ();
  Buffer.contents out

(* ---- request parsing ---- *)

let split_target target =
  let raw_path, raw_query =
    match String.index_opt target '?' with
    | None -> (target, "")
    | Some i ->
        ( String.sub target 0 i,
          String.sub target (i + 1) (String.length target - i - 1) )
  in
  let path =
    String.split_on_char '/' raw_path |> List.filter (fun s -> s <> "")
  in
  let query =
    if raw_query = "" then []
    else
      String.split_on_char '&' raw_query
      |> List.filter_map (fun kv ->
             if kv = "" then None
             else
               match String.index_opt kv '=' with
               | None -> Some (kv, "")
               | Some i ->
                   Some
                     ( String.sub kv 0 i,
                       String.sub kv (i + 1) (String.length kv - i - 1) ))
  in
  (path, query)

let parse_header_exn line =
  match String.index_opt line ':' with
  | None -> raise (Bad (Printf.sprintf "malformed header %S" line))
  | Some i ->
      let name = String.lowercase_ascii (String.sub line 0 i) in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      (name, value)

let read_request r =
  match
    let request_line = input_line_exn r in
    let meth, target =
      match String.split_on_char ' ' request_line with
      | [ m; t; v ]
        when String.length v >= 5 && String.sub v 0 5 = "HTTP/" ->
          (String.uppercase_ascii m, t)
      | _ -> raise (Bad (Printf.sprintf "malformed request line %S" request_line))
    in
    let headers = ref [] in
    let rec go n =
      if n > max_headers then raise (Bad "too many headers");
      match input_line_exn r with
      | "" -> ()
      | line ->
          headers := parse_header_exn line :: !headers;
          go (n + 1)
    in
    go 0;
    let headers = List.rev !headers in
    let body =
      match List.assoc_opt "content-length" headers with
      | None -> ""
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 && n <= max_body -> read_exact_exn r n
          | Some _ -> raise (Bad "body too large")
          | None -> raise (Bad "malformed Content-Length"))
    in
    let path, query = split_target target in
    { meth; target; path; query; headers; body }
  with
  | req -> Ok req
  | exception Bad msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* ---- writing ---- *)

let status_reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let head ~status ~headers ~content_type ~framing =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_reason status));
  Buffer.add_string b "Server: bfdn-serve\r\n";
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b framing;
  Buffer.add_string b "Connection: close\r\n\r\n";
  b

let write_response fd ~status ?(headers = [])
    ?(content_type = "application/json") body =
  let b =
    head ~status ~headers ~content_type
      ~framing:(Printf.sprintf "Content-Length: %d\r\n" (String.length body))
  in
  Buffer.add_string b body;
  write_all fd (Buffer.contents b)

let start_chunked fd ~status ?(headers = [])
    ?(content_type = "application/jsonl") () =
  let b =
    head ~status ~headers ~content_type
      ~framing:"Transfer-Encoding: chunked\r\n"
  in
  write_all fd (Buffer.contents b)

let send_chunk fd chunk =
  if chunk <> "" then
    write_all fd
      (Printf.sprintf "%x\r\n%s\r\n" (String.length chunk) chunk)

let finish_chunked fd = write_all fd "0\r\n\r\n"
