(** Blocking HTTP/1.1 client for the scenario service.

    Speaks exactly the dialect {!Http} serves: one request per
    connection, [Content-Length] bodies, chunked responses decoded
    transparently. Used by the [explore submit] subcommand, the serve
    test-suite and the E18 bench — which is the point: CI exercises the
    real wire protocol, not an in-process shortcut. *)

type response = {
  status : int;
  headers : (string * string) list;  (** names lowercased *)
  body : string;  (** chunked responses: the concatenated chunks *)
}

val request :
  ?host:string ->
  ?port:int ->
  ?body:string ->
  ?on_chunk:(string -> unit) ->
  meth:string ->
  path:string ->
  unit ->
  (response, string) result
(** One round-trip to [host:port] (default [127.0.0.1:8080]).
    [on_chunk] fires per decoded chunk as it arrives (chunked responses
    only) — the live half of [GET /jobs/:id/stream]; the full body is
    still returned. [Error] covers refused connections and protocol
    violations. *)

val response_header : string -> response -> string option
(** Case-insensitive header lookup. *)
