type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let response_header name r =
  List.assoc_opt (String.lowercase_ascii name) r.headers

exception Bad of string

let read_response ?on_chunk fd =
  let r = Http.reader fd in
  let status_line = Http.input_line_exn r in
  let status =
    match String.split_on_char ' ' status_line with
    | _ :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> raise (Bad ("bad status line: " ^ status_line)))
    | _ -> raise (Bad ("bad status line: " ^ status_line))
  in
  let headers = ref [] in
  let rec read_headers () =
    match Http.input_line_exn r with
    | "" -> ()
    | line ->
        headers := Http.parse_header_exn line :: !headers;
        read_headers ()
  in
  read_headers ();
  let headers = List.rev !headers in
  let body =
    match
      ( List.assoc_opt "transfer-encoding" headers,
        List.assoc_opt "content-length" headers )
    with
    | Some te, _ when String.lowercase_ascii (String.trim te) <> "chunked" ->
        raise (Bad ("unsupported transfer-encoding: " ^ te))
    | Some _, _ ->
        let out = Buffer.create 1024 in
        let rec chunks () =
          let size_line = String.trim (Http.input_line_exn r) in
          let size =
            match int_of_string_opt ("0x" ^ size_line) with
            | Some n when n >= 0 -> n
            | _ -> raise (Bad ("bad chunk size: " ^ size_line))
          in
          if size = 0 then
            (* trailer line after the last chunk; tolerate a hangup *)
            ignore (try Http.input_line_exn r with Http.Bad _ -> "")
          else begin
            let chunk = Http.read_exact_exn r size in
            ignore (Http.input_line_exn r);
            Buffer.add_string out chunk;
            Option.iter (fun f -> f chunk) on_chunk;
            chunks ()
          end
        in
        chunks ();
        Buffer.contents out
    | _, Some cl -> (
        match int_of_string_opt (String.trim cl) with
        | Some n when n >= 0 -> Http.read_exact_exn r n
        | _ -> raise (Bad ("bad Content-Length: " ^ cl)))
    | None, None -> Http.read_to_eof_exn r
  in
  { status; headers; body }

let request ?(host = "127.0.0.1") ?(port = 8080) ?body ?on_chunk ~meth ~path ()
    =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
      with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "connect %s:%d: %s" host port
               (Unix.error_message e))
      | () -> (
          let b = Buffer.create 256 in
          Buffer.add_string b
            (Printf.sprintf "%s %s HTTP/1.1\r\n"
               (String.uppercase_ascii meth)
               path);
          Buffer.add_string b (Printf.sprintf "Host: %s:%d\r\n" host port);
          (match body with
          | Some body ->
              Buffer.add_string b
                (Printf.sprintf
                   "Content-Type: application/json\r\nContent-Length: %d\r\n"
                   (String.length body))
          | None -> ());
          Buffer.add_string b "Connection: close\r\n\r\n";
          Option.iter (Buffer.add_string b) body;
          match
            Http.write_all fd (Buffer.contents b);
            read_response ?on_chunk fd
          with
          | resp -> Ok resp
          | exception Bad msg -> Error msg
          | exception Http.Bad msg -> Error msg
          | exception Unix.Unix_error (e, _, _) ->
              Error (Unix.error_message e)))
