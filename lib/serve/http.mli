(** Minimal HTTP/1.1 framing over [Unix] file descriptors.

    Just enough of the protocol for the scenario-execution service: one
    request per connection ([Connection: close] on every response),
    [Content-Length] bodies in both directions and chunked
    transfer-encoding for the live JSONL streams. No TLS, no keep-alive,
    no content negotiation — the point is zero new dependencies (the
    engine already links [unix]).

    Hard limits guard the parser against hostile or broken clients: an
    8 KiB request line / header line, 64 headers and a 1 MiB body.
    Anything past a limit is a parse error, which the server maps to a
    4xx response. *)

type request = {
  meth : string;  (** uppercase, e.g. ["POST"] *)
  target : string;  (** the raw request target, e.g. ["/run?wait=0"] *)
  path : string list;
      (** non-empty target segments: ["/jobs/3/stream"] is
          [\["jobs"; "3"; "stream"\]]; ["/"] is [\[\]] *)
  query : (string * string) list;  (** decoded [k=v] pairs, target order *)
  headers : (string * string) list;
      (** names lowercased; values stripped of surrounding whitespace *)
  body : string;
}

val header : string -> request -> string option
(** Case-insensitive header lookup. *)

val query_param : string -> request -> string option

(** {2 Reading}

    A [reader] wraps a file descriptor with a small refill buffer; it
    owns neither the descriptor nor its lifetime. *)

type reader

val reader : Unix.file_descr -> reader

val read_request : reader -> (request, string) result
(** Parse one request (request line, headers, then a [Content-Length]
    body if announced). [Error] covers malformed framing, a limit
    violation, or EOF before a complete request. *)

(** {2 Low-level framing}

    The primitives [read_request] is built from, shared with {!Client}
    so both sides of the wire use one framing implementation. All raise
    {!Bad} on malformed input or premature EOF. *)

exception Bad of string

val input_line_exn : reader -> string
(** One line, CRLF (or bare LF) stripped. *)

val read_exact_exn : reader -> int -> string

val read_to_eof_exn : reader -> string

val parse_header_exn : string -> string * string
(** ["Name: value"] → [("name", "value")] (name lowercased, value
    trimmed). *)

val write_all : Unix.file_descr -> string -> unit
(** Loop until the whole string is written. *)

(** {2 Writing} *)

val status_reason : int -> string
(** ["OK"], ["Too Many Requests"], ... (["Unknown"] for unmapped codes). *)

val write_response :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  string ->
  unit
(** One complete response with [Content-Length], the standard server
    headers and [Connection: close]. [content_type] defaults to
    [application/json]. *)

val start_chunked :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  unit ->
  unit
(** Response head with [Transfer-Encoding: chunked]; follow with
    {!send_chunk} and {!finish_chunked}. [content_type] defaults to
    [application/jsonl]. *)

val send_chunk : Unix.file_descr -> string -> unit
(** One chunk, written and flushed immediately (empty strings are
    skipped: an empty chunk would terminate the stream). *)

val finish_chunked : Unix.file_descr -> unit
(** The terminating zero-length chunk. *)
