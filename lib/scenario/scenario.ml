module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Exec_env = Bfdn_sim.Exec_env
module Adversary = Bfdn_sim.Adversary
module Rng = Bfdn_util.Rng
module Probe = Bfdn_obs.Probe
module Json = Bfdn_obs.Json

type instance =
  | World of { world : string; params : Param.binding list }
  | Adversarial of { policy : string; params : Param.binding list }

type t = {
  instance : instance;
  algo : string;
  algo_params : Param.binding list;
  k : int;
  seed : int;
  max_rounds : int option;
  metrics : bool;
  faults : Param.binding list;
  batch_seeds : int;
      (* S >= 1: the spec stands for the S seeds [seed, seed + S).
         1 (the default, and the only value [run] executes directly)
         keeps the wire form byte-identical to pre-batch specs. *)
}

type outcome = {
  result : Runner.result;
  replay_rounds : int option;
  n : int;
  depth : int;
  max_degree : int;
}

let canon_instance = function
  | World { world; params } -> World { world; params = Param.canon params }
  | Adversarial { policy; params } ->
      Adversarial { policy; params = Param.canon params }

let make ?(algo = "bfdn") ?(algo_params = []) ?(k = 8) ?(seed = 0) ?max_rounds
    ?(metrics = false) ?(faults = []) ?(batch_seeds = 1) instance =
  {
    instance = canon_instance instance;
    algo;
    algo_params = Param.canon algo_params;
    k;
    seed;
    max_rounds;
    metrics;
    faults = Param.canon faults;
    batch_seeds;
  }

(* Lane [i] of a batched spec: the plain spec the batch engine's result
   for seed [seed + i] must be byte-identical to (the batch determinism
   oracle). Total order over lanes is the seed order. *)
let unbatch t i =
  if i < 0 || i >= t.batch_seeds then
    invalid_arg
      (Printf.sprintf "Scenario.unbatch: lane %d out of range (batch of %d)" i
         t.batch_seeds);
  { t with batch_seeds = 1; seed = t.seed + i }

let world ?(params = []) name = World { world = name; params }

let generated ~family ~n ~depth_hint =
  World
    {
      world = family;
      params = [ ("depth_hint", Param.Int depth_hint); ("n", Param.Int n) ];
    }

let adversarial ~policy ~capacity ~depth_budget =
  Adversarial
    {
      policy;
      params =
        [ ("capacity", Param.Int capacity);
          ("depth_budget", Param.Int depth_budget);
        ];
    }

let instance_label t =
  match t.instance with
  | World { world; _ } -> world
  | Adversarial { policy; _ } -> "adv:" ^ policy

let describe t =
  let with_params name params =
    if params = [] then name
    else Printf.sprintf "%s(%s)" name (Param.bindings_to_string params)
  in
  let inst =
    match t.instance with
    | World { world; params } -> with_params world params
    | Adversarial { policy; params } -> with_params ("adv:" ^ policy) params
  in
  let cap =
    match t.max_rounds with
    | None -> ""
    | Some m -> Printf.sprintf " max_rounds=%d" m
  in
  let flt =
    if t.faults = [] then ""
    else Printf.sprintf " faults(%s)" (Param.bindings_to_string t.faults)
  in
  let batch =
    if t.batch_seeds = 1 then ""
    else Printf.sprintf " batch=%d" t.batch_seeds
  in
  Printf.sprintf "%s/%s k=%d seed=%d%s%s%s" inst
    (with_params t.algo t.algo_params)
    t.k t.seed cap flt batch

let equal (a : t) (b : t) = a = b
let equal_outcome (a : outcome) (b : outcome) = a = b

(* ---- validation ---- *)

let ( let* ) = Result.bind

let check_params ~what ~schema params =
  match Param.validate ~schema params with
  | Ok () -> Ok ()
  | Error msg -> Error (Printf.sprintf "%s: %s" what msg)

let validate t =
  let* entry =
    match Algo_registry.find t.algo with
    | None -> Error (Printf.sprintf "unknown algorithm %S" t.algo)
    | Some e -> Ok e
  in
  let caps = Algo_registry.caps entry in
  let* () =
    check_params
      ~what:(Printf.sprintf "algorithm %S" t.algo)
      ~schema:entry.params t.algo_params
  in
  let* () =
    match t.instance with
    | World { world; params } -> (
        match World_registry.find world with
        | None -> Error (Printf.sprintf "unknown world %S" world)
        | Some e -> (
            let* () =
              check_params
                ~what:(Printf.sprintf "world %S" world)
                ~schema:e.params params
            in
            match e.World_registry.kind with
            | World_registry.Grid _ | World_registry.Graph _ ->
                if caps.graph then Ok ()
                else
                  Error
                    (Printf.sprintf
                       "algorithm %S does not run on graph worlds (world %S \
                        needs a graph-capable algorithm, e.g. bfdn-graph)"
                       t.algo world)
            | World_registry.Tree _ ->
                let* () =
                  if caps.tree || caps.async then Ok ()
                  else
                    Error
                      (Printf.sprintf
                         "algorithm %S does not run on tree worlds" t.algo)
                in
                (match World_registry.scale_of_params params with
                | "eager" -> Ok ()
                | "lazy" ->
                    if not caps.tree then
                      Error
                        (Printf.sprintf
                           "algorithm %S needs an eagerly materialized world \
                            (scale=lazy is tree-runner only)"
                           t.algo)
                    else if Bfdn_sim.Lazy_world.supported world then Ok ()
                    else
                      Error
                        (Printf.sprintf
                           "world %S has no lazy materialization (lazy \
                            families: %s)"
                           world
                           (String.concat ", " Bfdn_sim.Lazy_world.families))
                | other ->
                    Error
                      (Printf.sprintf
                         "world %S: scale must be \"eager\" or \"lazy\" \
                          (got %S)"
                         world other))))
    | Adversarial { policy; params } -> (
        match World_registry.find_policy policy with
        | None -> Error (Printf.sprintf "unknown adversary policy %S" policy)
        | Some p ->
            let* () =
              check_params
                ~what:(Printf.sprintf "adversary %S" policy)
                ~schema:p.p_params params
            in
            if caps.adaptive then Ok ()
            else
              Error
                (Printf.sprintf
                   "algorithm %S is not adaptive-capable and cannot face an \
                    adversarial world"
                   t.algo))
  in
  let* () = if t.k >= 1 then Ok () else Error "k must be >= 1" in
  let* () = Fault_spec.validate ~k:t.k t.faults in
  let* () =
    if t.batch_seeds >= 1 && t.batch_seeds <= 65536 then Ok ()
    else Error "batch seeds must be in [1, 65536]"
  in
  match t.max_rounds with
  | Some m when m < 1 -> Error "max_rounds must be >= 1"
  | _ -> Ok ()

(* ---- JSON codec ----

   {"schema_version":1,
    "world":{"name":"comb","params":{"depth_hint":12,"n":500}},   (xor "adversary")
    "algo":{"name":"bfdn","params":{}},
    "k":9,"seed":3,"metrics":false}                               (optional "max_rounds")

   Parameter objects are emitted in canonical (sorted) key order and
   decoded back to canonical bindings, so decode ∘ encode = id. *)

let schema_version = 1

(* Version 2 extends the vocabulary (graph/grid worlds, async-only
   algorithms, seed batches) without changing the member shape. It is
   emitted only for specs that need it, so every version-1 spec — and
   its fingerprint, the serve cache key — stays byte-identical (pinned
   by the wire-shape golden test). The parser accepts both. *)
let schema_version_graph = 2

let wire_version t =
  let graph_world =
    match t.instance with
    | Adversarial _ -> false
    | World { world; _ } -> (
        match World_registry.find world with
        | Some { World_registry.kind = Grid _ | Graph _; _ } -> true
        | _ -> false)
  in
  let non_tree_algo =
    match Algo_registry.find t.algo with
    | Some e -> e.Algo_registry.make_tree = None
    | None -> false
  in
  if graph_world || non_tree_algo || t.batch_seeds > 1 then
    schema_version_graph
  else schema_version

let named name params =
  Json.Obj [ ("name", Json.String name); ("params", Param.to_json params) ]

let to_json t =
  let instance_field =
    match t.instance with
    | World { world; params } -> ("world", named world params)
    | Adversarial { policy; params } -> ("adversary", named policy params)
  in
  let tail =
    (match t.max_rounds with
    | None -> []
    | Some m -> [ ("max_rounds", Json.Int m) ])
    @ [ ("metrics", Json.Bool t.metrics) ]
  in
  (* "faults" is emitted only when non-empty, so pre-fault specs encode
     byte-identically (the wire-shape golden test pins this). *)
  let faults_field =
    if t.faults = [] then []
    else [ ("faults", Param.to_json t.faults) ]
  in
  (* Same policy for "batch": a 1-seed batch IS the plain spec, on the
     wire and in the cache (their fingerprints coincide by design). *)
  let batch_field =
    if t.batch_seeds = 1 then []
    else [ ("batch", Json.Obj [ ("seeds", Json.Int t.batch_seeds) ]) ]
  in
  Json.Obj
    ([ ("schema_version", Json.Int (wire_version t));
       instance_field;
       ("algo", named t.algo t.algo_params);
     ]
    @ faults_field @ batch_field
    @ [ ("k", Json.Int t.k); ("seed", Json.Int t.seed) ]
    @ tail)

let int_field j key =
  match Json.member key j with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)
  | None -> Error (Printf.sprintf "missing field %S" key)

let named_of_json ~what j =
  match Json.member "name" j with
  | Some (Json.String name) -> (
      match Json.member "params" j with
      | None -> Ok (name, [])
      | Some pj -> (
          match Param.of_json pj with
          | Ok params -> Ok (name, params)
          | Error msg -> Error (Printf.sprintf "%s params: %s" what msg)))
  | Some _ -> Error (Printf.sprintf "%s: \"name\" must be a string" what)
  | None -> Error (Printf.sprintf "%s: missing \"name\"" what)

let of_json j =
  let* version = int_field j "schema_version" in
  let* () =
    if version = schema_version || version = schema_version_graph then Ok ()
    else Error (Printf.sprintf "unsupported schema_version %d" version)
  in
  let* instance =
    match (Json.member "world" j, Json.member "adversary" j) with
    | Some _, Some _ -> Error "spec has both \"world\" and \"adversary\""
    | None, None -> Error "spec needs a \"world\" or an \"adversary\""
    | Some wj, None ->
        let* world, params = named_of_json ~what:"world" wj in
        Ok (World { world; params })
    | None, Some aj ->
        let* policy, params = named_of_json ~what:"adversary" aj in
        Ok (Adversarial { policy; params })
  in
  let* algo, algo_params =
    match Json.member "algo" j with
    | None -> Error "missing field \"algo\""
    | Some aj -> named_of_json ~what:"algo" aj
  in
  let* k = int_field j "k" in
  let* seed = int_field j "seed" in
  let* max_rounds =
    match Json.member "max_rounds" j with
    | None -> Ok None
    | Some (Json.Int m) -> Ok (Some m)
    | Some _ -> Error "field \"max_rounds\" must be an integer"
  in
  let* metrics =
    match Json.member "metrics" j with
    | None -> Ok false
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error "field \"metrics\" must be a boolean"
  in
  let* faults =
    match Json.member "faults" j with
    | None -> Ok []
    | Some fj -> (
        match Param.of_json fj with
        | Ok params -> Ok params
        | Error msg -> Error (Printf.sprintf "faults params: %s" msg))
  in
  let* batch_seeds =
    match Json.member "batch" j with
    | None -> Ok 1
    | Some bj -> (
        match int_field bj "seeds" with
        | Ok s -> Ok s
        | Error msg -> Error ("batch: " ^ msg))
  in
  Ok
    {
      instance;
      algo;
      algo_params;
      k;
      seed;
      max_rounds;
      metrics;
      faults;
      batch_seeds;
    }

let to_string t = Json.to_string (to_json t)

(* The canonical spec hash used as the serve layer's result-cache key.
   The wire form is already canonical (fixed member order, sorted
   params), so hashing it hashes the spec. [metrics] is advisory — it
   never alters results (probes observe without perturbing) — so it is
   normalized out: toggling a dashboard must not defeat the cache.
   FNV-1a over Int64 keeps the value identical on every platform. *)
let fingerprint t =
  let wire = to_string { t with metrics = false } in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    wire;
  Printf.sprintf "%016Lx" !h

(* Canonical serializable outcome — the "Report" body served (and
   cached) by the serve layer. Field order is fixed and every value is
   scalar, so same outcome ⇒ same bytes. *)
let outcome_to_json (o : outcome) =
  Json.Obj
    [
      ("rounds", Json.Int o.result.Runner.rounds);
      ("explored", Json.Bool o.result.Runner.explored);
      ("at_root", Json.Bool o.result.Runner.at_root);
      ("moves", Json.Int o.result.Runner.moves);
      ("edge_events", Json.Int o.result.Runner.edge_events);
      ("hit_round_limit", Json.Bool o.result.Runner.hit_round_limit);
      ( "replay_rounds",
        match o.replay_rounds with None -> Json.Null | Some r -> Json.Int r );
      ("n", Json.Int o.n);
      ("depth", Json.Int o.depth);
      ("max_degree", Json.Int o.max_degree);
    ]

(* Machine-readable dump of every dispatch table — one source shared by
   [explore list --json] and the server's [GET /registry], so external
   tooling never scrapes the human-format listing. *)
let registry_json () =
  let caps (c : Algo_registry.caps) =
    Json.Obj
      [
        ("adaptive", Json.Bool c.adaptive);
        ("async", Json.Bool c.async);
        ("graph", Json.Bool c.graph);
        ("tree", Json.Bool c.tree);
      ]
  in
  let algorithms =
    List.map
      (fun (e : Algo_registry.entry) ->
        let c = Algo_registry.caps e in
        Json.Obj
          [
            ("name", Json.String e.name);
            ("aliases", Json.List (List.map (fun a -> Json.String a) e.aliases));
            ("doc", Json.String e.doc);
            ("caps", caps c);
            ("runnable", Json.Bool (c.tree || c.graph || c.async));
            ("params", Param.json_of_schema e.params);
          ])
      Algo_registry.all
  in
  let worlds =
    List.map
      (fun (e : World_registry.entry) ->
        let kind =
          match e.kind with
          | World_registry.Tree _ -> "tree"
          | World_registry.Grid _ -> "grid"
          | World_registry.Graph _ -> "graph"
        in
        Json.Obj
          [
            ("name", Json.String e.name);
            ("kind", Json.String kind);
            ("doc", Json.String e.doc);
            ("params", Param.json_of_schema e.params);
          ])
      World_registry.worlds
  in
  let policies =
    List.map
      (fun (p : World_registry.policy_entry) ->
        Json.Obj
          [
            ("name", Json.String p.p_name);
            ("doc", Json.String p.p_doc);
            ("params", Param.json_of_schema p.p_params);
          ])
      World_registry.policies
  in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version_graph);
      ("algorithms", Json.List algorithms);
      ("worlds", Json.List worlds);
      ("policies", Json.List policies);
      ("faults", Param.json_of_schema Fault_spec.schema);
    ]

let of_string s =
  let* j =
    match Json.of_string s with
    | Ok j -> Ok j
    | Error msg -> Error ("spec is not valid JSON: " ^ msg)
  in
  let* t = of_json j in
  let* () = validate t in
  Ok t

let save ~path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string t);
      Out_channel.output_char oc '\n')

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match of_string (String.trim contents) with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* ---- execution ----

   The seed derivation is load-bearing: split index 0 is the instance
   stream, split index 1 the algorithm stream, and an adversarial replay
   re-derives the algorithm stream from scratch so the frozen-tree re-run
   sees exactly the stream the adaptive run saw. This matches the engine's
   historical Job.run wiring bit for bit (asserted by the golden
   equivalence suite in test/test_scenario.ml). *)

let instance_stream root = Rng.split root 0
let algo_stream root = Rng.split root 1

(* Split index 2. Existing seeds keep their instance and algorithm
   streams bit for bit (Rng.split is pure), so fault-free scenarios run
   identically to the pre-fault library — asserted by the golden
   equivalence suite. *)
let fault_stream root = Rng.split root 2

let checked t =
  match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario: " ^ msg ^ " in " ^ describe t)

(* The plan is re-derived from the root seed wherever the run is
   (re-)executed — main run, adversarial replay, any engine worker — so
   every execution of a spec injects the identical schedule. *)
let fault_plan t root = Fault_spec.plan ~rng:(fault_stream root) ~k:t.k t.faults

let instantiate ~probe ~rng ?fault ?shard_pool t env =
  Algo_registry.instantiate ~probe ~rng ~params:t.algo_params ?fault ?shard_pool
    t.algo env

(* The tree path wraps the scenario-level [on_round] (which receives the
   uniform execution view) back into Runner's [Env.t] callback; when no
   observer is installed nothing is allocated and Runner's plain loop
   runs untouched. *)
let tree_on_round ~on_round ~algo env =
  match on_round with
  | None -> None
  | Some f ->
      let view = Exec_env.of_env algo env in
      Some (fun (_ : Env.t) -> f view)

(* Graph worlds: build the port-labeled graph from the instance stream,
   thread probe + fault hook into the graph environment, and drive the
   algorithm's execution view with the generic round loop. *)
let run_graph ~probe ~on_round ~root ~fault_hook t ~world ~params =
  let module Genv = Bfdn_graphs.Graph_env in
  let g, origin =
    World_registry.build_graph ~rng:(instance_stream root) ~params world
  in
  let genv = Genv.create ~probe ~fault:fault_hook g ~origin ~k:t.k in
  let exec =
    Algo_registry.instantiate_graph ~rng:(algo_stream root)
      ~params:t.algo_params t.algo genv
  in
  let result = Exec_env.run ?max_rounds:t.max_rounds ?on_round ~probe exec in
  {
    result;
    replay_rounds = None;
    n = Genv.oracle_n_nodes genv;
    depth = Genv.oracle_radius genv;
    max_degree = Genv.oracle_max_degree genv;
  }

(* Tree worlds driven by an async-only algorithm: same hidden instance
   as the synchronous path (identical instance-stream draw), stepped in
   unit-time horizons. *)
let run_async ~probe ~on_round ~root ~fault_hook t tree =
  let exec =
    Algo_registry.instantiate_async ~probe ~rng:(algo_stream root)
      ~params:t.algo_params ~fault:fault_hook t.algo tree ~k:t.k
  in
  let result = Exec_env.run ?max_rounds:t.max_rounds ?on_round ~probe exec in
  let stats = Bfdn_trees.Tree_stats.compute tree in
  {
    result;
    replay_rounds = None;
    n = stats.n;
    depth = stats.depth;
    max_degree = stats.max_degree;
  }

(* [shards]: an advisory, non-wire execution hint — sharding is
   bit-for-bit invisible in results (asserted by the determinism suite),
   so it lives beside [probe]/[on_round] rather than in the spec. The
   domain team is created for the run and torn down with it. *)
let run ?(probe = Probe.noop) ?on_round ?shards t =
  checked t;
  if t.batch_seeds > 1 then
    invalid_arg
      ("Scenario.run: batched spec (batch.seeds = "
      ^ string_of_int t.batch_seeds
      ^ "); execute it with Seed_batch.run (lib/engine), or run one lane \
         via unbatch: "
      ^ describe t);
  let pool =
    match shards with
    | Some s when s > 1 -> Some (Bfdn_util.Shard_pool.create ~shards:s)
    | _ -> None
  in
  Fun.protect ~finally:(fun () ->
      match pool with
      | Some p -> Bfdn_util.Shard_pool.shutdown p
      | None -> ())
  @@ fun () ->
  let root = Rng.create t.seed in
  let fault = fault_plan t root in
  let fault_hook = Bfdn_faults.Injector.hook_opt fault in
  match t.instance with
  | World { world; params } -> (
      let entry =
        match Algo_registry.find t.algo with
        | Some e -> e
        | None -> assert false (* checked *)
      in
      let kind =
        match World_registry.find world with
        | Some e -> e.World_registry.kind
        | None -> assert false (* checked *)
      in
      match kind with
      | World_registry.Grid _ | World_registry.Graph _ ->
          run_graph ~probe ~on_round ~root ~fault_hook t ~world ~params
      | World_registry.Tree _ when entry.Algo_registry.make_tree = None ->
          let tree =
            World_registry.build_tree ~rng:(instance_stream root) ~params world
          in
          run_async ~probe ~on_round ~root ~fault_hook t tree
      | World_registry.Tree _ ->
          let env =
            match World_registry.scale_of_params params with
            | "lazy" ->
                (* Huge tier: the hidden tree is generated at reveal, so the
                   run holds O(explored) state. The lazy seed is one draw off
                   the instance stream — the same stream the eager build
                   would consume — keeping the derivation spec-deterministic. *)
                let seed =
                  Int64.to_int (Rng.bits64 (instance_stream root)) land max_int
                in
                let lw = World_registry.build_lazy ~seed ~params world in
                Env.of_world (Bfdn_sim.Lazy_world.world lw) ~k:t.k ~probe
                  ~fault:fault_hook
            | _ ->
                let tree =
                  World_registry.build_tree ~rng:(instance_stream root) ~params
                    world
                in
                Env.create tree ~k:t.k ~probe ~fault:fault_hook
          in
          let algo =
            instantiate ~probe ~rng:(algo_stream root) ?fault ?shard_pool:pool
              t env
          in
          let result =
            Runner.run ?max_rounds:t.max_rounds
              ?on_round:(tree_on_round ~on_round ~algo env)
              ~probe algo env
          in
          {
            result;
            replay_rounds = None;
            n = Env.oracle_n env;
            depth = Env.oracle_depth env;
            max_degree = Env.oracle_max_degree env;
          })
  | Adversarial { policy; params } ->
      let adv =
        World_registry.build_adversary ~rng:(instance_stream root) ~params
          policy
      in
      let env =
        Env.of_world (Adversary.world adv) ~k:t.k ~probe ~fault:fault_hook
      in
      let algo =
        instantiate ~probe ~rng:(algo_stream root) ?fault ?shard_pool:pool t
          env
      in
      let result =
        Runner.run ?max_rounds:t.max_rounds
          ?on_round:(tree_on_round ~on_round ~algo env)
          ~probe algo env
      in
      let tree = Adversary.frozen adv in
      let stats = Bfdn_trees.Tree_stats.compute tree in
      let fault2 = fault_plan t root in
      let env2 =
        Env.create tree ~k:t.k ~fault:(Bfdn_faults.Injector.hook_opt fault2)
      in
      let algo2 =
        instantiate ~probe:Probe.noop ~rng:(algo_stream root) ?fault:fault2 t
          env2
      in
      let replay = Runner.run ?max_rounds:t.max_rounds algo2 env2 in
      {
        result;
        replay_rounds = Some replay.rounds;
        n = stats.n;
        depth = stats.depth;
        max_degree = stats.max_degree;
      }

let materialize t =
  checked t;
  match t.instance with
  | Adversarial _ ->
      invalid_arg
        ("Scenario.materialize: adversarial worlds only exist after a run: "
       ^ describe t)
  | World { world; params } -> (
      match World_registry.find world with
      | Some { World_registry.kind = Grid _ | Graph _; _ } ->
          invalid_arg
            ("Scenario.materialize: " ^ world
           ^ " is a graph world, not a tree: " ^ describe t)
      | _ -> (
          match World_registry.scale_of_params params with
          | "lazy" ->
              (* The same seed derivation as [run], so the materialized tree
                 is the instance a (breadth-first) lazy run discovers. *)
              let seed =
                Int64.to_int
                  (Rng.bits64 (instance_stream (Rng.create t.seed)))
                land max_int
              in
              Bfdn_sim.Lazy_world.materialize
                (World_registry.build_lazy ~seed ~params world)
          | _ ->
              World_registry.build_tree
                ~rng:(instance_stream (Rng.create t.seed))
                ~params world))

let run_on_tree ?(probe = Probe.noop) ?on_round t tree =
  checked t;
  let root = Rng.create t.seed in
  let fault = fault_plan t root in
  let tree_capable =
    match Algo_registry.find t.algo with
    | Some e -> e.Algo_registry.make_tree <> None
    | None -> false
  in
  if not tree_capable then
    (* Async-only algorithm on an explicit hidden tree: same derivation
       as [run] on a tree world. *)
    run_async ~probe ~on_round ~root
      ~fault_hook:(Bfdn_faults.Injector.hook_opt fault)
      t tree
  else
    let env =
      Env.create tree ~k:t.k ~probe ~fault:(Bfdn_faults.Injector.hook_opt fault)
    in
    let algo = instantiate ~probe ~rng:(algo_stream root) ?fault t env in
    let result =
      Runner.run ?max_rounds:t.max_rounds
        ?on_round:(tree_on_round ~on_round ~algo env)
        ~probe algo env
    in
    {
      result;
      replay_rounds = None;
      n = Env.oracle_n env;
      depth = Env.oracle_depth env;
      max_degree = Env.oracle_max_degree env;
    }
