module Tree_gen = Bfdn_trees.Tree_gen
module Adversary = Bfdn_sim.Adversary
module Rng = Bfdn_util.Rng

type ctx = { rng : Rng.t; params : Param.binding list }

type kind =
  | Tree of (ctx -> Bfdn_trees.Tree.t)
  | Grid of (ctx -> Bfdn_graphs.Grid.t)
  | Graph of (ctx -> Bfdn_graphs.Graph.t * int)

type entry = { name : string; doc : string; params : Param.spec list; kind : kind }

type policy_entry = {
  p_name : string;
  p_doc : string;
  p_params : Param.spec list;
  p_make : ctx -> Adversary.t;
}

(* ---- tree worlds: one entry per Tree_gen family ---- *)

let tree_params =
  [
    { Param.key = "n"; doc = "target node count"; default = Param.Int 5000 };
    {
      Param.key = "depth_hint";
      doc = "depth hint where the family has a depth parameter";
      default = Param.Int 20;
    };
    {
      Param.key = "scale";
      doc =
        "world materialization: \"eager\" builds the tree up front, \
         \"lazy\" generates nodes at reveal so a run holds O(explored) \
         memory (the huge tier; supported families only)";
      default = Param.String "eager";
    };
  ]

(* Documentation strings for Tree_gen.of_family names. The entry list is
   generated from Tree_gen.families itself, so a family added there is
   automatically registered (a missing doc fails loudly at module
   init). *)
let family_docs =
  [
    ("path", "a single path — D = n-1, the depth-dominated extreme");
    ("star", "root plus n-1 leaves — the breadth-dominated extreme");
    ("binary", "complete binary tree of depth ~log2 n");
    ("ternary", "complete ternary tree");
    ("spider", "disjoint legs of equal length hanging off the root");
    ("caterpillar", "spine with leaves on every spine node");
    ("comb", "spine with a downward tooth per spine node (deep, adversarial)");
    ("broom", "a handle path ending in a star");
    ("random", "random recursive tree (uniform parent)");
    ("random-deep", "random tree with a guaranteed depth-D root path");
    ("bounded3", "random tree with maximum degree 3");
    ("trap", "recursive binary trap — halves splitting teams at every level");
    ("hidden-path", "chained binary blocks — the CTE-tightness regime [11]");
  ]

let tree_entries =
  List.map
    (fun family ->
      let doc =
        match List.assoc_opt family family_docs with
        | Some d -> d
        | None ->
            invalid_arg
              ("World_registry: tree family without a doc string: " ^ family)
      in
      {
        name = family;
        doc;
        params = tree_params;
        kind =
          Tree
            (fun c ->
              let n = Param.get_int ~schema:tree_params c.params "n" in
              let depth_hint =
                Param.get_int ~schema:tree_params c.params "depth_hint"
              in
              Tree_gen.of_family family ~rng:c.rng ~n ~depth_hint);
      })
    Tree_gen.families

(* ---- grid world ---- *)

let grid_params =
  [
    { Param.key = "width"; doc = "grid width in cells"; default = Param.Int 30 };
    { Param.key = "height"; doc = "grid height in cells"; default = Param.Int 12 };
    {
      Param.key = "obstacles";
      doc = "number of random rectangular obstacles";
      default = Param.Int 10;
    };
    {
      Param.key = "max_side";
      doc = "largest obstacle side (0 = auto: max 2 (width/7))";
      default = Param.Int 0;
    };
  ]

let grid_entry =
  {
    name = "grid";
    doc =
      "warehouse grid with rectangular obstacles — graph exploration via \
       bfdn-graph (the grid subcommand)";
    params = grid_params;
    kind =
      Grid
        (fun c ->
          let gi k = Param.get_int ~schema:grid_params c.params k in
          let width = gi "width" and height = gi "height" in
          let max_side =
            match gi "max_side" with 0 -> max 2 (width / 7) | m -> m
          in
          Bfdn_graphs.Grid.make
            (Bfdn_graphs.Grid.random_spec ~rng:c.rng ~width ~height
               ~obstacle_count:(gi "obstacles") ~max_side));
  }

(* ---- general graph worlds ---- *)

let random_graph_params =
  [
    { Param.key = "n"; doc = "node count"; default = Param.Int 400 };
    {
      Param.key = "extra_edges";
      doc = "chords added on top of the random spanning tree (edge density)";
      default = Param.Int 120;
    };
  ]

let layered_params =
  [
    { Param.key = "layers"; doc = "number of layers"; default = Param.Int 12 };
    { Param.key = "width"; doc = "nodes per layer"; default = Param.Int 8 };
    {
      Param.key = "chords";
      doc = "extra same-or-adjacent-layer chords";
      default = Param.Int 30;
    };
  ]

let graph_entries =
  [
    {
      name = "random-graph";
      doc =
        "connected random graph — spanning tree plus uniform chords \
         (general-graph exploration, Proposition 9)";
      params = random_graph_params;
      kind =
        Graph
          (fun c ->
            let gi k = Param.get_int ~schema:random_graph_params c.params k in
            ( Bfdn_graphs.Graph_gen.random_connected ~rng:c.rng ~n:(gi "n")
                ~extra_edges:(gi "extra_edges"),
              0 ));
    };
    {
      name = "layered";
      doc =
        "layered graph — consecutive layers fully wired through a random \
         matching plus chords; origin in layer 0";
      params = layered_params;
      kind =
        Graph
          (fun c ->
            let gi k = Param.get_int ~schema:layered_params c.params k in
            ( Bfdn_graphs.Graph_gen.layered ~rng:c.rng ~layers:(gi "layers")
                ~width:(gi "width") ~chords:(gi "chords"),
              0 ));
    };
  ]

let worlds = tree_entries @ [ grid_entry ] @ graph_entries

let find name = List.find_opt (fun e -> String.equal e.name name) worlds

let tree_names =
  List.filter_map
    (fun e -> match e.kind with Tree _ -> Some e.name | Grid _ | Graph _ -> None)
    worlds

let graph_names =
  List.filter_map
    (fun e -> match e.kind with Grid _ | Graph _ -> Some e.name | Tree _ -> None)
    worlds

let cli_world_choices = List.map (fun n -> (n, n)) tree_names

let build_tree ?rng ?(params = []) name =
  match find name with
  | None -> invalid_arg ("World_registry: unknown world " ^ name)
  | Some e -> (
      match e.kind with
      | Grid _ | Graph _ ->
          invalid_arg
            ("World_registry: " ^ name ^ " is a graph world, not a tree")
      | Tree build -> (
          match Param.validate ~schema:e.params params with
          | Error msg ->
              invalid_arg (Printf.sprintf "World_registry: %s: %s" name msg)
          | Ok () ->
              let rng = match rng with Some r -> r | None -> Rng.create 0 in
              build { rng; params }))

let build_graph ?rng ?(params = []) name =
  match find name with
  | None -> invalid_arg ("World_registry: unknown world " ^ name)
  | Some e -> (
      match e.kind with
      | Tree _ ->
          invalid_arg
            ("World_registry: " ^ name ^ " is a tree world, not a graph")
      | Grid build -> (
          match Param.validate ~schema:e.params params with
          | Error msg ->
              invalid_arg (Printf.sprintf "World_registry: %s: %s" name msg)
          | Ok () ->
              let rng = match rng with Some r -> r | None -> Rng.create 0 in
              let grid = build { rng; params } in
              (Bfdn_graphs.Grid.graph grid, Bfdn_graphs.Grid.origin grid))
      | Graph build -> (
          match Param.validate ~schema:e.params params with
          | Error msg ->
              invalid_arg (Printf.sprintf "World_registry: %s: %s" name msg)
          | Ok () ->
              let rng = match rng with Some r -> r | None -> Rng.create 0 in
              build { rng; params }))

let scale_of_params params =
  Param.get_string ~schema:tree_params params "scale"

(* Seed-independence of the hidden world: true only for eagerly built
   tree families whose generator ignores its rng, i.e. exactly the specs
   where every seed of a batch would rebuild the identical tree. *)
let deterministic_tree ?(params = []) name =
  match find name with
  | Some { kind = Tree _; _ } ->
      Tree_gen.deterministic_family name && scale_of_params params = "eager"
  | _ -> false

let build_lazy ?(seed = 0) ?(params = []) name =
  match find name with
  | None -> invalid_arg ("World_registry: unknown world " ^ name)
  | Some e -> (
      match Param.validate ~schema:e.params params with
      | Error msg ->
          invalid_arg (Printf.sprintf "World_registry: %s: %s" name msg)
      | Ok () ->
          let n = Param.get_int ~schema:tree_params params "n" in
          let depth_hint =
            Param.get_int ~schema:tree_params params "depth_hint"
          in
          Bfdn_sim.Lazy_world.make ~family:name ~n ~depth_hint ~seed)

(* ---- adaptive adversary policies ---- *)

let budget_params =
  [
    {
      Param.key = "capacity";
      doc = "total node budget (ids pre-allocated at promise time)";
      default = Param.Int 3000;
    };
    {
      Param.key = "depth_budget";
      doc = "maximum tree depth the adversary may reach";
      default = Param.Int 200;
    };
  ]

let budgets params =
  ( Param.get_int ~schema:budget_params params "capacity",
    Param.get_int ~schema:budget_params params "depth_budget" )

let corridor_params =
  budget_params
  @ [
      {
        Param.key = "threshold";
        doc = "crowd size above which the corridor stops branching";
        default = Param.Int 2;
      };
    ]

let random_policy_params =
  budget_params
  @ [
      {
        Param.key = "max_children";
        doc = "children are uniform in 0..max_children per reveal";
        default = Param.Int 3;
      };
    ]

let policies =
  [
    {
      p_name = "thick-comb";
      p_doc =
        "[11]-style comb grown online: the spine advances one edge per round \
         while teeth swallow half of every proportional split";
      p_params = budget_params;
      p_make =
        (fun c ->
          let capacity, depth_budget = budgets c.params in
          Adversary.make_rec ~capacity ~depth_budget Adversary.thick_comb);
    };
    {
      p_name = "corridor";
      p_doc =
        "crowds at least threshold strong march a single corridor; smaller \
         groups keep being split";
      p_params = corridor_params;
      p_make =
        (fun c ->
          let capacity, depth_budget = budgets c.params in
          let threshold =
            Param.get_int ~schema:corridor_params c.params "threshold"
          in
          Adversary.make ~capacity ~depth_budget
            (Adversary.corridor_crowds ~threshold));
    };
    {
      p_name = "bomb";
      p_doc = "spend the whole node budget at the first reveals (shallow bomb)";
      p_params = budget_params;
      p_make =
        (fun c ->
          let capacity, depth_budget = budgets c.params in
          Adversary.make ~capacity ~depth_budget Adversary.greedy_widest);
    };
    {
      p_name = "miser";
      p_doc = "one child per reveal — the tree degenerates to a path";
      p_params = budget_params;
      p_make =
        (fun c ->
          let capacity, depth_budget = budgets c.params in
          Adversary.make ~capacity ~depth_budget Adversary.miser);
    };
    {
      p_name = "random";
      p_doc = "uniform 0..max_children children per reveal";
      p_params = random_policy_params;
      p_make =
        (fun c ->
          let capacity, depth_budget = budgets c.params in
          let max_children =
            Param.get_int ~schema:random_policy_params c.params "max_children"
          in
          Adversary.make ~capacity ~depth_budget
            (Adversary.random_policy c.rng ~max_children));
    };
  ]

let find_policy name =
  List.find_opt (fun p -> String.equal p.p_name name) policies

let policy_names = List.map (fun p -> p.p_name) policies

let cli_policy_choices = List.map (fun n -> (n, n)) policy_names

let build_adversary ?rng ?(params = []) name =
  match find_policy name with
  | None -> invalid_arg ("World_registry: unknown adversary policy " ^ name)
  | Some p -> (
      match Param.validate ~schema:p.p_params params with
      | Error msg ->
          invalid_arg (Printf.sprintf "World_registry: %s: %s" name msg)
      | Ok () ->
          let rng = match rng with Some r -> r | None -> Rng.create 0 in
          p.p_make { rng; params })
