(** Typed named parameters for the scenario registries.

    Every algorithm and world registered in {!Algo_registry} /
    {!World_registry} publishes a {e schema}: a list of parameter specs,
    each carrying a documentation string and a typed default. A concrete
    scenario then supplies {e bindings} — a subset of the schema's keys
    with values of the matching type — and constructors read each
    parameter through the schema, falling back to the default. This is
    what lets run specs be serialized, validated and listed (`explore
    list`) without any per-algorithm plumbing. *)

type value = Int of int | Float of float | Bool of bool | String of string

type binding = string * value

type spec = { key : string; doc : string; default : value }
(** The default also fixes the parameter's type: a binding for [key]
    must carry the same [value] constructor. *)

val type_name : value -> string
(** ["int"], ["float"], ["bool"] or ["string"]. *)

val canon : binding list -> binding list
(** Sort bindings by key (the canonical form used by the JSON codec, so
    that decode ∘ encode is the identity on canonical specs).
    @raise Invalid_argument on a duplicate key. *)

val validate : schema:spec list -> binding list -> (unit, string) result
(** Every bound key must exist in the schema with a matching value
    type. *)

(** {2 Schema-checked accessors}

    All raise [Invalid_argument] if [key] is not in the schema or the
    bound value has the wrong type — a registry-construction bug, not
    user input error (user input is caught by {!validate} first). *)

val get_int : schema:spec list -> binding list -> string -> int
val get_bool : schema:spec list -> binding list -> string -> bool
val get_string : schema:spec list -> binding list -> string -> string
val get_float : schema:spec list -> binding list -> string -> float

(** {2 Rendering and JSON} *)

val value_to_string : value -> string

val describe_schema : spec list -> string
(** One line per parameter: [key : type = default — doc]. Empty string
    for an empty schema. *)

val bindings_to_string : binding list -> string
(** Compact [k=v,k=v] rendering for labels. *)

val to_json : binding list -> Bfdn_obs.Json.t
(** An object with one member per binding, in canonical (sorted) key
    order. *)

val of_json : Bfdn_obs.Json.t -> (binding list, string) result
(** Inverse of {!to_json}; accepts any member order and returns
    canonical bindings. *)

val json_of_schema : spec list -> Bfdn_obs.Json.t
(** Machine-readable schema dump: a list of
    [{key, type, default, doc}] objects in schema order — the shape
    served by [GET /registry] and [explore list --json]. *)
