(** The fault-injection parameter schema and its compiler.

    Fault schedules ride the scenario wire format as one more {!Param}
    binding list (the optional ["faults"] member of a spec), so they get
    the same validation, canonicalization, listing and JSON round-trip
    as algorithm and world parameters — and a batch job with faults is
    replayable evidence like any other. This module owns the schema and
    compiles bindings into a {!Bfdn_faults.Fault_plan.t}; the plan layer
    itself stays [Param]-free (it sits below this library in the
    dependency order).

    Parameters:
    - [crashes] (string, [""]): explicit schedule,
      ["ROBOT@ROUND"] or ["ROBOT@ROUND+AFTER"] comma-separated — e.g.
      ["2@10,5@40+30"] crashes robot 2 permanently at round 10 and robot
      5 at round 40 with a replacement at the root 30 rounds later.
      Mutually exclusive with [rate].
    - [rate] (float, [0.0]): random mode — each robot independently
      crashes with this probability, at a round uniform in
      [\[1, window\]].
    - [window] (int, [64]): crash-round window for random mode.
    - [restart] (int, [-1]): restart delay for random-mode crashes;
      [-1] = permanent.
    - [drops] (float, [0.0]): whiteboard write-drop probability.
    - [mask] (string, ["none"]): per-round move mask —
      ["none"], ["rotating"] (robot blocked when
      [(round + robot) mod mask_m = 0]), ["random"] (blocked with
      probability [mask_p]), ["half"] (upper half of the fleet
      permanently blocked), ["solo"] (all but robot 0 blocked).
    - [mask_m] (int, [3]), [mask_p] (float, [0.5]): mask knobs. *)

val schema : Param.spec list

val validate : ?k:int -> Param.binding list -> (unit, string) result
(** Schema check plus semantic ranges; with [k], crash robot ids are
    also range-checked. *)

val active : Param.binding list -> bool
(** Whether the bindings describe any fault at all — [false] for [[]]
    and for all-default bindings. *)

val plan :
  rng:Bfdn_util.Rng.t -> k:int -> Param.binding list ->
  Bfdn_faults.Fault_plan.t option
(** Compile bindings into a plan, [None] when not {!active}. [rng] is
    the scenario's dedicated fault stream ([Rng.split] index 2 of the
    root seed): random-mode crash draws and the plan's coin seed come
    from it, so the same spec always compiles to the same plan — in the
    main run, in an adversarial replay and in every engine worker.
    @raise Invalid_argument when {!validate} would fail (callers
    validate first). *)
