module Json = Bfdn_obs.Json

type value = Int of int | Float of float | Bool of bool | String of string

type binding = string * value

type spec = { key : string; doc : string; default : value }

let type_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Bool _ -> "bool"
  | String _ -> "string"

let canon bindings =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) bindings
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg ("Param.canon: duplicate parameter " ^ a);
        check rest
    | _ -> ()
  in
  check sorted;
  sorted

let same_type a b =
  match (a, b) with
  | Int _, Int _ | Float _, Float _ | Bool _, Bool _ | String _, String _ ->
      true
  | _ -> false

let validate ~schema bindings =
  let rec go = function
    | [] -> Ok ()
    | (key, v) :: rest -> (
        match List.find_opt (fun s -> String.equal s.key key) schema with
        | None -> Error (Printf.sprintf "unknown parameter %s" key)
        | Some s ->
            if same_type s.default v then go rest
            else
              Error
                (Printf.sprintf "parameter %s expects %s, got %s" key
                   (type_name s.default) (type_name v)))
  in
  go bindings

let lookup ~schema bindings key =
  match List.find_opt (fun s -> String.equal s.key key) schema with
  | None -> invalid_arg ("Param.lookup: key not in schema: " ^ key)
  | Some s -> (
      match List.assoc_opt key bindings with
      | None -> s.default
      | Some v ->
          if same_type s.default v then v
          else
            invalid_arg
              (Printf.sprintf "Param.lookup: %s expects %s, got %s" key
                 (type_name s.default) (type_name v)))

let get_int ~schema bindings key =
  match lookup ~schema bindings key with
  | Int i -> i
  | _ -> invalid_arg ("Param.get_int: " ^ key ^ " is not an int")

let get_bool ~schema bindings key =
  match lookup ~schema bindings key with
  | Bool b -> b
  | _ -> invalid_arg ("Param.get_bool: " ^ key ^ " is not a bool")

let get_string ~schema bindings key =
  match lookup ~schema bindings key with
  | String s -> s
  | _ -> invalid_arg ("Param.get_string: " ^ key ^ " is not a string")

let get_float ~schema bindings key =
  match lookup ~schema bindings key with
  | Float f -> f
  | _ -> invalid_arg ("Param.get_float: " ^ key ^ " is not a float")

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Json.float_to_string f
  | Bool b -> string_of_bool b
  | String s -> s

let describe_schema specs =
  String.concat ""
    (List.map
       (fun s ->
         Printf.sprintf "    %-14s %-7s default %-12s %s\n" s.key
           (type_name s.default)
           (value_to_string s.default)
           s.doc)
       specs)

let bindings_to_string bindings =
  String.concat ","
    (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) bindings)

let value_to_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b
  | String s -> Json.String s

let to_json bindings =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) (canon bindings))

let json_of_schema specs =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("default", value_to_json s.default);
             ("doc", Json.String s.doc);
             ("key", Json.String s.key);
             ("type", Json.String (type_name s.default));
           ])
       specs)

let value_of_json = function
  | Json.Int i -> Ok (Int i)
  | Json.Float f -> Ok (Float f)
  | Json.Bool b -> Ok (Bool b)
  | Json.String s -> Ok (String s)
  | _ -> Error "parameter values must be scalars"

let of_json = function
  | Json.Obj kvs ->
      let rec go acc = function
        | [] -> Ok (canon (List.rev acc))
        | (k, j) :: rest -> (
            match value_of_json j with
            | Ok v -> go ((k, v) :: acc) rest
            | Error e -> Error (Printf.sprintf "parameter %s: %s" k e))
      in
      go [] kvs
  | _ -> Error "params must be a JSON object"
