module Fault_plan = Bfdn_faults.Fault_plan

let schema =
  [
    {
      Param.key = "crashes";
      doc =
        "explicit schedule, comma-separated ROBOT@ROUND[+AFTER] (e.g. \
         \"2@10,5@40+30\"); exclusive with rate";
      default = Param.String "";
    };
    {
      Param.key = "rate";
      doc = "random mode: per-robot crash probability";
      default = Param.Float 0.0;
    };
    {
      Param.key = "window";
      doc = "random mode: crash round uniform in [1, window]";
      default = Param.Int 64;
    };
    {
      Param.key = "restart";
      doc = "random mode: rounds until a replacement at the root; -1 = never";
      default = Param.Int (-1);
    };
    {
      Param.key = "drops";
      doc = "whiteboard write-drop probability";
      default = Param.Float 0.0;
    };
    {
      Param.key = "mask";
      doc = "move mask: none, rotating, random, half or solo";
      default = Param.String "none";
    };
    {
      Param.key = "mask_m";
      doc = "rotating mask: blocked when (round + robot) mod mask_m = 0";
      default = Param.Int 3;
    };
    {
      Param.key = "mask_p";
      doc = "random mask: per-(round, robot) block probability";
      default = Param.Float 0.5;
    };
  ]

let ( let* ) = Result.bind

let parse_int ~what s =
  match int_of_string_opt (String.trim s) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: %S is not an integer" what s)

(* "ROBOT@ROUND" or "ROBOT@ROUND+AFTER" -> (robot, round, restart delay). *)
let parse_entry s =
  let what = Printf.sprintf "crash entry %S" s in
  match String.index_opt s '@' with
  | None -> Error (what ^ ": expected ROBOT@ROUND[+AFTER]")
  | Some i ->
      let* robot = parse_int ~what (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let* round, after =
        match String.index_opt rest '+' with
        | None ->
            let* r = parse_int ~what rest in
            Ok (r, -1)
        | Some j ->
            let* r = parse_int ~what (String.sub rest 0 j) in
            let* a =
              parse_int ~what (String.sub rest (j + 1) (String.length rest - j - 1))
            in
            Ok (r, a)
      in
      let* () =
        if robot < 0 then Error (what ^ ": robot must be >= 0")
        else if round < 1 then Error (what ^ ": round must be >= 1")
        else if after <> -1 && after < 1 then
          Error (what ^ ": restart delay must be >= 1")
        else Ok ()
      in
      Ok (robot, round, after)

let parse_crashes s =
  if String.trim s = "" then Ok []
  else
    let parts = String.split_on_char ',' s in
    List.fold_left
      (fun acc part ->
        let* acc = acc in
        let* entry = parse_entry (String.trim part) in
        Ok (entry :: acc))
      (Ok []) parts
    |> Result.map List.rev

let mask_of ~mask ~mask_m ~mask_p =
  match mask with
  | "none" -> Ok Fault_plan.No_mask
  | "rotating" ->
      if mask_m < 2 then Error "fault mask_m must be >= 2"
      else Ok (Fault_plan.Rotating mask_m)
  | "random" ->
      if mask_p < 0.0 || mask_p > 1.0 then Error "fault mask_p must be in [0, 1]"
      else Ok (Fault_plan.Random mask_p)
  | "half" -> Ok Fault_plan.Half
  | "solo" -> Ok Fault_plan.Solo
  | other ->
      Error
        (Printf.sprintf
           "unknown fault mask %S (expected none, rotating, random, half or \
            solo)"
           other)

type compiled = {
  c_crashes : (int * int * int) list;
  c_rate : float;
  c_window : int;
  c_restart : int;
  c_drops : float;
  c_mask : Fault_plan.mask;
}

let compile ?k bindings =
  let* () = Param.validate ~schema bindings in
  let get_i = Param.get_int ~schema bindings in
  let get_f = Param.get_float ~schema bindings in
  let get_s = Param.get_string ~schema bindings in
  let* c_crashes = parse_crashes (get_s "crashes") in
  let c_rate = get_f "rate" in
  let c_window = get_i "window" in
  let c_restart = get_i "restart" in
  let c_drops = get_f "drops" in
  let* c_mask =
    mask_of ~mask:(get_s "mask") ~mask_m:(get_i "mask_m")
      ~mask_p:(get_f "mask_p")
  in
  let* () =
    if c_rate < 0.0 || c_rate > 1.0 then Error "fault rate must be in [0, 1]"
    else if c_window < 1 then Error "fault window must be >= 1"
    else if c_restart < -1 then Error "fault restart must be >= -1"
    else if c_drops < 0.0 || c_drops >= 1.0 then
      Error "fault drops must be in [0, 1)"
    else if c_crashes <> [] && c_rate > 0.0 then
      Error "fault crashes and rate are mutually exclusive"
    else Ok ()
  in
  let* () =
    match k with
    | None -> Ok ()
    | Some k ->
        List.fold_left
          (fun acc (robot, _, _) ->
            let* () = acc in
            if robot >= k then
              Error
                (Printf.sprintf "fault crash robot %d out of range (k = %d)"
                   robot k)
            else Ok ())
          (Ok ()) c_crashes
  in
  Ok { c_crashes; c_rate; c_window; c_restart; c_drops; c_mask }

let validate ?k bindings = Result.map (fun _ -> ()) (compile ?k bindings)

let active bindings =
  match compile bindings with
  | Error _ -> true (* invalid is never "inactive": let validation report it *)
  | Ok c ->
      c.c_crashes <> [] || c.c_rate > 0.0 || c.c_drops > 0.0
      || c.c_mask <> Fault_plan.No_mask

let plan ~rng ~k bindings =
  match compile ~k bindings with
  | Error msg -> invalid_arg ("Fault_spec.plan: " ^ msg)
  | Ok c ->
      if
        c.c_crashes = [] && c.c_rate = 0.0 && c.c_drops = 0.0
        && c.c_mask = Fault_plan.No_mask
      then None
      else if c.c_crashes <> [] then
        let seed = Bfdn_util.Rng.int rng 0x40000000 in
        Some
          (Fault_plan.make ~drop_writes:c.c_drops ~mask:c.c_mask ~seed ~k
             c.c_crashes)
      else
        Some
          (Fault_plan.random ~rng ~k ~rate:c.c_rate ~window:c.c_window
             ~restart:c.c_restart ~drop_writes:c.c_drops ~mask:c.c_mask ())
