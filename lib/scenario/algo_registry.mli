(** The single algorithm-dispatch table of the repository.

    Every exploration-algorithm variant registers a canonical name
    (plus aliases), a documentation string, a {!Param} schema and one
    constructor {e per environment it can drive}: synchronous trees
    ({!Bfdn_sim.Env}, the fast path), graphs
    ({!Bfdn_graphs.Graph_env}), and the continuous-time relaxation
    ({!Bfdn_sim.Async_env}). Capability flags are {e derived} from the
    constructors that exist ({!caps}), so listings can never drift from
    what [instantiate*] accepts. The CLI ([bin/explore.ml]), the bench
    harness and the engine's {!Bfdn_engine.Job} all resolve algorithm
    names here — none of them carries its own name→constructor match
    any more, so a variant registered once is reachable everywhere
    (asserted in [test/test_scenario.ml]). *)

type caps = {
  tree : bool;
      (** runs on the synchronous tree environment ({!Bfdn_sim.Env}) *)
  adaptive : bool;
      (** online — sound against a lazily materialized adversarial
          world (no oracle access; implies nothing is read beyond the
          discovered tree) *)
  graph : bool;  (** graph variant ({!Bfdn_graphs.Graph_env}) *)
  async : bool;  (** continuous-time variant ({!Bfdn_sim.Async_env}) *)
}

type ctx = {
  env : Bfdn_sim.Env.t;
  rng : Bfdn_util.Rng.t;
      (** the scenario's algorithm RNG stream; consumed only by
          randomized variants *)
  probe : Bfdn_obs.Probe.t;
  params : Param.binding list;
  fault : Bfdn_faults.Fault_plan.t option;
      (** the scenario's compiled fault plan, when one is active.
          Crashes and masks already act through the environment; this is
          for algorithm-side fault models (today: the whiteboard
          write-drop predicate read by crash-tolerant BFDN). *)
  shard_pool : Bfdn_util.Shard_pool.t option;
      (** borrowed domain team for sharding a data-parallel phase (today:
          BFDN's route computation). Sharding never alters results, so
          entries without such a phase drop it. *)
}

type graph_ctx = {
  g_env : Bfdn_graphs.Graph_env.t;
      (** built by the caller: probes and fault hooks are threaded into
          {!Bfdn_graphs.Graph_env.create}, not here *)
  g_rng : Bfdn_util.Rng.t;
  g_params : Param.binding list;
}

type async_ctx = {
  a_tree : Bfdn_trees.Tree.t;
      (** the hidden tree; the constructor builds the
          {!Bfdn_sim.Async_env} itself so parameters (robot speeds) can
          shape it *)
  a_k : int;
  a_rng : Bfdn_util.Rng.t;
  a_probe : Bfdn_obs.Probe.t;
  a_params : Param.binding list;
  a_fault : Bfdn_sim.Env.fault_hook;
}

type entry = {
  name : string;
  aliases : string list;
  doc : string;
  params : Param.spec list;
  adaptive : bool;
      (** semantic flag, meaningful only alongside [make_tree] *)
  make_tree : (ctx -> Bfdn_sim.Runner.algo) option;
  make_graph : (graph_ctx -> Bfdn_sim.Exec_env.t) option;
  make_async : (async_ctx -> Bfdn_sim.Exec_env.t) option;
}

val caps : entry -> caps
(** Derived from constructor presence: [tree = (make_tree <> None)],
    [graph = (make_graph <> None)], [async = (make_async <> None)],
    [adaptive = adaptive && tree]. *)

val all : entry list
(** Registration order; canonical names are unique and every entry has
    at least one constructor (enforced at module initialization). *)

val find : string -> entry option
(** Resolve a canonical name or an alias. *)

val names : string list
(** All canonical names, registration order. *)

val tree_names : string list
(** Canonical names runnable on the synchronous tree environment — the
    [sweep]/[run] vocabulary. *)

val adaptive_names : string list
(** Canonical names sound against adaptive adversaries — the
    [adversary] subcommand vocabulary. *)

val graph_names : string list
(** Canonical names runnable on graph worlds. *)

val async_names : string list
(** Canonical names runnable in the continuous-time relaxation. *)

val cli_choices : (string * string) list
(** [(token, canonical)] for every tree-runnable name {e and} its
    aliases: the single source of the CLI's [--algo] enum. *)

val adaptive_cli_choices : (string * string) list
(** Same, restricted to adaptive-capable algorithms. *)

val instantiate :
  ?probe:Bfdn_obs.Probe.t ->
  ?rng:Bfdn_util.Rng.t ->
  ?params:Param.binding list ->
  ?fault:Bfdn_faults.Fault_plan.t ->
  ?shard_pool:Bfdn_util.Shard_pool.t ->
  string ->
  Bfdn_sim.Env.t ->
  Bfdn_sim.Runner.algo
(** Construct a named algorithm on a tree environment. [rng] defaults to
    a fresh deterministic stream (seed 0) — deterministic algorithms
    never touch it. [shard_pool] reaches algorithms with a sharded
    phase (see {!ctx}). @raise Invalid_argument on an unknown name, an
    algorithm with no tree constructor, or parameters violating the
    schema. *)

val instantiate_graph :
  ?rng:Bfdn_util.Rng.t ->
  ?params:Param.binding list ->
  string ->
  Bfdn_graphs.Graph_env.t ->
  Bfdn_sim.Exec_env.t
(** Construct a named algorithm on a graph environment, packaged for
    {!Bfdn_sim.Exec_env.run}. @raise Invalid_argument as
    {!instantiate}. *)

val instantiate_async :
  ?probe:Bfdn_obs.Probe.t ->
  ?rng:Bfdn_util.Rng.t ->
  ?params:Param.binding list ->
  ?fault:Bfdn_sim.Env.fault_hook ->
  string ->
  Bfdn_trees.Tree.t ->
  k:int ->
  Bfdn_sim.Exec_env.t
(** Construct a named algorithm in the continuous-time relaxation on the
    given hidden tree, packaged for {!Bfdn_sim.Exec_env.run}.
    @raise Invalid_argument as {!instantiate}. *)
