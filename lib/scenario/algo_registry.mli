(** The single algorithm-dispatch table of the repository.

    Every exploration-algorithm variant registers a canonical name
    (plus aliases), a documentation string, a {!Param} schema and a
    constructor, together with {e capability flags} describing which
    environments it can drive. The CLI ([bin/explore.ml]), the bench
    harness and the engine's {!Bfdn_engine.Job} all resolve algorithm
    names here — none of them carries its own name→constructor match
    any more, so a variant registered once is reachable everywhere
    (asserted in [test/test_scenario.ml]). *)

type caps = {
  tree : bool;
      (** runs on the synchronous tree environment ({!Bfdn_sim.Env}) *)
  adaptive : bool;
      (** online — sound against a lazily materialized adversarial
          world (no oracle access; implies nothing is read beyond the
          discovered tree) *)
  graph : bool;  (** graph variant ({!Bfdn_graphs.Graph_env}) *)
  async : bool;  (** continuous-time variant ({!Bfdn_sim.Async_env}) *)
}

type ctx = {
  env : Bfdn_sim.Env.t;
  rng : Bfdn_util.Rng.t;
      (** the scenario's algorithm RNG stream; consumed only by
          randomized variants *)
  probe : Bfdn_obs.Probe.t;
  params : Param.binding list;
  fault : Bfdn_faults.Fault_plan.t option;
      (** the scenario's compiled fault plan, when one is active.
          Crashes and masks already act through the environment; this is
          for algorithm-side fault models (today: the whiteboard
          write-drop predicate read by crash-tolerant BFDN). *)
}

type entry = {
  name : string;
  aliases : string list;
  doc : string;
  params : Param.spec list;
  caps : caps;
  make : (ctx -> Bfdn_sim.Runner.algo) option;
      (** [None] for variants that do not run on {!Bfdn_sim.Env}
          (graph/async): they are registered for listing and capability
          reporting, and are driven by their own harnesses. *)
}

val all : entry list
(** Registration order; canonical names are unique. *)

val find : string -> entry option
(** Resolve a canonical name or an alias. *)

val names : string list
(** All canonical names, registration order. *)

val tree_names : string list
(** Canonical names runnable on the synchronous tree environment — the
    [sweep]/[run] vocabulary. *)

val adaptive_names : string list
(** Canonical names sound against adaptive adversaries — the
    [adversary] subcommand vocabulary. *)

val cli_choices : (string * string) list
(** [(token, canonical)] for every tree-runnable name {e and} its
    aliases: the single source of the CLI's [--algo] enum. *)

val adaptive_cli_choices : (string * string) list
(** Same, restricted to adaptive-capable algorithms. *)

val instantiate :
  ?probe:Bfdn_obs.Probe.t ->
  ?rng:Bfdn_util.Rng.t ->
  ?params:Param.binding list ->
  ?fault:Bfdn_faults.Fault_plan.t ->
  string ->
  Bfdn_sim.Env.t ->
  Bfdn_sim.Runner.algo
(** Construct a named algorithm on an environment. [rng] defaults to a
    fresh deterministic stream (seed 0) — deterministic algorithms never
    touch it. @raise Invalid_argument on an unknown name, a non-tree
    algorithm, or parameters violating the schema. *)
