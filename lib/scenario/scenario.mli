(** Declarative, serializable run specifications.

    A scenario names everything needed to rebuild and execute one
    exploration run — a world (or adaptive adversary policy) with
    parameters, an algorithm with parameters, the robot count, a seed,
    an optional round cap and a probe configuration. [run] is a pure
    function of the spec: two executions of the same spec, on any
    machine, in any engine worker, produce identical outcomes. Specs
    round-trip through JSON ([to_string] / [of_string]), which is what
    makes batch jobs, sweep reports and `--spec` files replayable
    evidence rather than closures.

    Dispatch goes through {!Algo_registry} and {!World_registry}
    exclusively; this module contains no algorithm or family names. *)

type instance =
  | World of { world : string; params : Param.binding list }
      (** a {!World_registry} world — tree, grid or general graph; the
          world's kind together with the algorithm's constructors picks
          the execution path (synchronous tree runner, graph
          environment, or continuous-time relaxation) *)
  | Adversarial of { policy : string; params : Param.binding list }
      (** a lazily materialized world grown online by a
          {!World_registry} policy; the frozen tree is replayed after
          the adaptive run *)

type t = {
  instance : instance;
  algo : string;  (** an {!Algo_registry} name or alias *)
  algo_params : Param.binding list;
  k : int;  (** robot count *)
  seed : int;
      (** split into independent instance and algorithm RNG streams *)
  max_rounds : int option;
      (** round cap; [None] = the Section 2.1 termination bound *)
  metrics : bool;
      (** advisory probe configuration: harnesses honouring it (the
          CLI) attach a metrics registry and print a dashboard; probes
          never alter results *)
  faults : Param.binding list;
      (** fault-injection schedule parameters ({!Fault_spec} schema);
          [[]] = no faults. Compiled at run time into a
          {!Bfdn_faults.Fault_plan} from the seed's dedicated fault
          stream, so the schedule replays identically everywhere. *)
  batch_seeds : int;
      (** S >= 1: the spec stands for the S consecutive seeds
          [seed, seed + S), executed in lockstep by the batch engine
          ([Bfdn_engine.Seed_batch]). [1] (the default) is the plain
          single-seed spec, byte-identical on the wire to pre-batch
          specs; values above 1 are emitted as a version-2
          ["batch":{"seeds":S}] member. *)
}

type outcome = {
  result : Bfdn_sim.Runner.result;
  replay_rounds : int option;
      (** adversarial scenarios only: rounds of a re-run on the frozen
          tree (equal to [result.rounds] for deterministic algorithms) *)
  n : int;  (** node count of the (frozen) instance *)
  depth : int;
  max_degree : int;
}

val make :
  ?algo:string ->
  ?algo_params:Param.binding list ->
  ?k:int ->
  ?seed:int ->
  ?max_rounds:int ->
  ?metrics:bool ->
  ?faults:Param.binding list ->
  ?batch_seeds:int ->
  instance ->
  t
(** Defaults: [algo="bfdn"], [k=8], [seed=0], no round cap, no metrics,
    no faults, [batch_seeds=1]. Parameter bindings are canonicalized
    (sorted). *)

val unbatch : t -> int -> t
(** [unbatch t i] is lane [i] of a batched spec: [batch_seeds = 1],
    [seed = t.seed + i]. The batch engine's outcome for lane [i] is
    byte-identical to [run (unbatch t i)] — the batch determinism
    oracle, asserted by the batch test suite.
    @raise Invalid_argument unless [0 <= i < t.batch_seeds]. *)

val world : ?params:Param.binding list -> string -> instance

val generated : family:string -> n:int -> depth_hint:int -> instance
(** The classic (family, n, depth_hint) tree instance. *)

val adversarial : policy:string -> capacity:int -> depth_budget:int -> instance

val instance_label : t -> string
(** ["comb"] / ["adv:thick-comb"] — the row label used by sweep tables. *)

val describe : t -> string
(** One-line human-readable rendering, used in labels and error text. *)

val equal : t -> t -> bool

val equal_outcome : outcome -> outcome -> bool
(** Structural equality; the whole record is immutable scalar data, so
    this is exactly "bit-for-bit identical run". *)

val validate : t -> (unit, string) result
(** Check every name against the registries, every parameter against
    its schema, capability compatibility (an oracle-reading algorithm
    cannot face an adaptive adversary) and the scalar ranges. *)

(** {2 JSON codec} *)

val to_json : t -> Bfdn_obs.Json.t
val of_json : Bfdn_obs.Json.t -> (t, string) result

val to_string : t -> string
(** Compact single-line JSON. [of_string (to_string t) = Ok t]. *)

val of_string : string -> (t, string) result
(** Parses and {!validate}s. *)

val save : path:string -> t -> unit

val load : string -> (t, string) result

val fingerprint : t -> string
(** Canonical spec hash (16 lowercase hex chars): FNV-1a/64 over the
    canonical wire form with the advisory [metrics] flag normalized to
    [false]. Because [run] is a pure function of the spec (the
    determinism oracle), equal fingerprints may soundly share a cached
    result — this is the serve layer's result-cache key. Equal specs
    (modulo [metrics]) hash equal; distinct specs collide only with
    ~2⁻⁶⁴ probability (collision-freedom over the golden suite is
    asserted in tests). *)

val outcome_to_json : outcome -> Bfdn_obs.Json.t
(** Canonical serializable outcome
    [{rounds, explored, at_root, moves, edge_events, hit_round_limit,
    replay_rounds, n, depth, max_degree}] with a fixed member order —
    same outcome ⇒ same bytes, which is what makes cached and fresh
    service responses byte-comparable. *)

val registry_json : unit -> Bfdn_obs.Json.t
(** Machine-readable dump of the algorithm/world/policy registries and
    the fault schema:
    [{schema_version, algorithms, worlds, policies, faults}]. Shared by
    [explore list --json] and the server's [GET /registry]. *)

(** {2 Execution} *)

(** {3 RNG stream derivation}

    The load-bearing seed derivation, shared verbatim with the batch
    engine so a batched lane and a plain run consume identical streams:
    [root = Rng.create seed], then split index 0 = instance stream,
    1 = algorithm stream, 2 = fault stream ({!Bfdn_util.Rng.split} is
    pure, so requesting one stream never perturbs another). *)

val instance_stream : Bfdn_util.Rng.t -> Bfdn_util.Rng.t
val algo_stream : Bfdn_util.Rng.t -> Bfdn_util.Rng.t
val fault_stream : Bfdn_util.Rng.t -> Bfdn_util.Rng.t

val fault_plan :
  t -> Bfdn_util.Rng.t -> Bfdn_faults.Fault_plan.t option
(** Compile the spec's fault schedule from the root stream ([None] when
    [faults = []], drawing nothing). Re-derivable anywhere the run is
    (re-)executed, so every execution injects the identical schedule. *)

val instantiate :
  probe:Bfdn_obs.Probe.t ->
  rng:Bfdn_util.Rng.t ->
  ?fault:Bfdn_faults.Fault_plan.t ->
  ?shard_pool:Bfdn_util.Shard_pool.t ->
  t ->
  Bfdn_sim.Env.t ->
  Bfdn_sim.Runner.algo
(** Construct the spec's algorithm on a prepared tree environment —
    {!Algo_registry.instantiate} with the spec's name and parameters.
    [rng] must be the spec's algorithm stream for the run to replay. *)

val run :
  ?probe:Bfdn_obs.Probe.t ->
  ?on_round:(Bfdn_sim.Exec_env.t -> unit) ->
  ?shards:int ->
  t ->
  outcome
(** Execute the spec — the single executor for every world kind. Derive
    the instance and algorithm RNG streams from [seed] ([Rng.split]
    indices 0 and 1), build the environment, construct the algorithm
    through {!Algo_registry} and drive the matching loop: synchronous
    tree worlds run through the monomorphic {!Bfdn_sim.Runner.run} fast
    path, grid/graph worlds through {!Bfdn_graphs.Graph_env} and
    tree worlds paired with an async-only algorithm through
    {!Bfdn_sim.Async_env} — the latter two via the uniform
    {!Bfdn_sim.Exec_env.run} loop. Adversarial scenarios additionally
    re-run the algorithm on the frozen tree and report [replay_rounds].
    [probe]/[on_round] observe the run without altering it; [on_round]
    receives the uniform {!Bfdn_sim.Exec_env.t} execution view on every
    path (on the tree path it is a wrapper over the live [Env.t], built
    only when an observer is installed).

    [shards] (advisory, not part of the spec) spreads the
    route-computation pass of algorithms with a sharded phase over
    [shards] domains ({!Bfdn_util.Shard_pool}); results are bit-for-bit
    identical for every value, so it is a pure latency knob for big
    single runs. Ignored on graph/async paths and by algorithms without
    a sharded phase.
    @raise Invalid_argument when {!validate} fails, and for batched
    specs ([batch_seeds > 1] — execute those with the batch engine's
    [Seed_batch.run], or lane-by-lane via {!unbatch}). *)

val materialize : t -> Bfdn_trees.Tree.t
(** The hidden tree [run] would explore, generated from the same
    instance stream — for [--dump-tree]-style exports.
    @raise Invalid_argument for adversarial scenarios (their tree only
    exists after a run) and for grid/graph worlds (no hidden tree). *)

val run_on_tree :
  ?probe:Bfdn_obs.Probe.t ->
  ?on_round:(Bfdn_sim.Exec_env.t -> unit) ->
  t ->
  Bfdn_trees.Tree.t ->
  outcome
(** Run the spec's algorithm on an externally supplied tree (e.g. a
    [--tree-file] replay), with the same algorithm-stream derivation as
    {!run}; the spec's instance field is ignored. Async-only algorithms
    run the continuous-time path on the given tree. *)
