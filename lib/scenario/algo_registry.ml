module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Exec_env = Bfdn_sim.Exec_env
module Async_env = Bfdn_sim.Async_env
module Rng = Bfdn_util.Rng
module Probe = Bfdn_obs.Probe

type caps = { tree : bool; adaptive : bool; graph : bool; async : bool }

type ctx = {
  env : Env.t;
  rng : Rng.t;
  probe : Probe.t;
  params : Param.binding list;
  fault : Bfdn_faults.Fault_plan.t option;
  shard_pool : Bfdn_util.Shard_pool.t option;
      (* borrowed domain team for algorithms with a sharded phase;
         entries without one simply ignore it (sharding never alters
         results, so accepting and dropping it is sound) *)
}

type graph_ctx = {
  g_env : Bfdn_graphs.Graph_env.t;
  g_rng : Rng.t;
  g_params : Param.binding list;
}

type async_ctx = {
  a_tree : Bfdn_trees.Tree.t;
  a_k : int;
  a_rng : Rng.t;
  a_probe : Probe.t;
  a_params : Param.binding list;
  a_fault : Env.fault_hook;
}

type entry = {
  name : string;
  aliases : string list;
  doc : string;
  params : Param.spec list;
  adaptive : bool;
  make_tree : (ctx -> Runner.algo) option;
  make_graph : (graph_ctx -> Exec_env.t) option;
  make_async : (async_ctx -> Exec_env.t) option;
}

(* Capabilities are derived from the constructors that actually exist, so
   `explore list` and /registry can never drift from what instantiate
   accepts (asserted in test_scenario). [adaptive] remains a semantic
   flag — soundness against a lazily materialized adversarial world is
   not decidable from the constructor's presence. *)
let caps e =
  {
    tree = e.make_tree <> None;
    adaptive = e.adaptive && e.make_tree <> None;
    graph = e.make_graph <> None;
    async = e.make_async <> None;
  }

let tree_entry ~name ?(aliases = []) ?(adaptive = true) ~doc ?(params = [])
    make_tree =
  {
    name;
    aliases;
    doc;
    params;
    adaptive;
    make_tree = Some make_tree;
    make_graph = None;
    make_async = None;
  }

(* BFDN's anchor-selection policy, exposed as a string parameter so the
   ablation variants are expressible in a serialized spec. *)
let policy_of_string ~rng = function
  | "least-loaded" -> Bfdn.Bfdn_algo.Least_loaded
  | "first-open" -> Bfdn.Bfdn_algo.First_open
  | "random-open" -> Bfdn.Bfdn_algo.Random_open rng
  | other ->
      invalid_arg
        ("Algo_registry: unknown anchor policy " ^ other
       ^ " (expected least-loaded, first-open or random-open)")

let bfdn_params =
  [
    {
      Param.key = "policy";
      doc = "anchor policy: least-loaded, first-open or random-open";
      default = Param.String "least-loaded";
    };
    {
      Param.key = "shortcut";
      doc = "re-anchor through the LCA when a DN excursion stalls (ablation)";
      default = Param.Bool false;
    };
    {
      Param.key = "fault_tolerant";
      doc =
        "crash-tolerant variant: detect silent robots via whiteboard \
         heartbeats and release their anchors";
      default = Param.Bool false;
    };
    {
      Param.key = "suspect_after";
      doc = "rounds of heartbeat silence before a robot is presumed lost";
      default = Param.Int 4;
    };
  ]

let rec_params =
  [
    {
      Param.key = "ell";
      doc = "recursion level l of BFDN_l (Theorem 10)";
      default = Param.Int 2;
    };
  ]

let async_params =
  [
    {
      Param.key = "speed_spread";
      doc =
        "speed heterogeneity: robot speeds drawn uniformly from \
         [1/(1+spread), 1] (0 = all unit speed, synchronous-like)";
      default = Param.Float 0.0;
    };
  ]

let all =
  [
    tree_entry ~name:"bfdn"
      ~doc:
        "Breadth-First Depth-Next, Algorithm 1 — 2n/k + D^2(min(log k, log \
         d)+3) rounds (Theorem 1)"
      ~params:bfdn_params
      (fun c ->
        let schema = bfdn_params in
        let policy =
          policy_of_string ~rng:c.rng (Param.get_string ~schema c.params "policy")
        in
        let shortcut = Param.get_bool ~schema c.params "shortcut" in
        let fault_tolerant = Param.get_bool ~schema c.params "fault_tolerant" in
        let suspect_after = Param.get_int ~schema c.params "suspect_after" in
        (* The ft variant reads the scenario's fault plan only for the
           whiteboard write-drop model; crashes and masks reach it
           through the environment like any other adversity. *)
        let drop =
          match c.fault with
          | None -> None
          | Some plan ->
              Some
                (fun ~round ~robot ->
                  Bfdn_faults.Fault_plan.drops_write plan ~round ~robot)
        in
        Bfdn.Bfdn_algo.algo
          (Bfdn.Bfdn_algo.make ~policy ~shortcut ~fault_tolerant ~suspect_after
             ?drop ?shard_pool:c.shard_pool ~probe:c.probe c.env));
    tree_entry ~name:"bfdn-wr" ~aliases:[ "bfdn-planner" ]
      ~doc:
        "BFDN in the write-read/restricted-memory model, Algorithm 2 — \
         root-planner plus per-node whiteboards (Proposition 6)"
      (fun c -> Bfdn.Bfdn_planner.algo (Bfdn.Bfdn_planner.make c.env));
    tree_entry ~name:"bfdn-rec"
      ~doc:
        "recursive BFDN_l — divide-depth composition, 4n/k^(1/l) + \
         O(D^(1+1/l)) rounds (Theorem 10)"
      ~params:rec_params
      (fun c ->
        let ell = Param.get_int ~schema:rec_params c.params "ell" in
        Bfdn.Bfdn_rec.algo (Bfdn.Bfdn_rec.make ~ell c.env));
    tree_entry ~name:"cte"
      ~doc:
        "Collective Tree Exploration of Fraigniaud et al. [10] — O(n/log k + \
         D) rounds, proportional branch splitting"
      (fun c -> Bfdn_baselines.Cte.make ~probe:c.probe c.env);
    tree_entry ~name:"cte-writeread"
      ~doc:
        "CTE with whiteboard-only communication — completion marks propagate \
         only as fast as robots carry them"
      (fun c -> Bfdn_baselines.Cte_writeread.make c.env);
    tree_entry ~name:"dfs"
      ~doc:"single-robot depth-first search — the 2(n-1) baseline"
      (fun c -> Bfdn_baselines.Dfs_single.make c.env);
    tree_entry ~name:"offline" ~adaptive:false
      ~doc:
        "offline Euler-tour split — 2(n/k + D) rounds with full knowledge of \
         the tree"
      (* Reads the hidden tree up front (oracle), so it is meaningless
         against a lazily materialized adversarial world. *)
      (fun c -> Bfdn_baselines.Offline_split.make c.env);
    tree_entry ~name:"random-walk"
      ~doc:"independent uniform random walks — naive randomized baseline"
      (fun c -> Bfdn_baselines.Random_walk.make ~rng:c.rng c.env);
    {
      name = "bfdn-graph";
      aliases = [];
      doc =
        "BFDN on non-tree graphs with a distance oracle (Proposition 9) — \
         non-BFS-tree edges are closed on first traversal, BFDN runs on the \
         rest";
      params = [];
      adaptive = false;
      make_tree = None;
      make_graph =
        Some
          (fun c -> Bfdn.Bfdn_graph.exec_env (Bfdn.Bfdn_graph.make c.g_env));
      make_async = None;
    };
    {
      name = "bfdn-async";
      aliases = [];
      doc =
        "BFDN under the continuous-time relaxation (Remark 8) — event-driven \
         on Bfdn_sim.Async_env, stepped in unit-time horizons";
      params = async_params;
      adaptive = false;
      make_tree = None;
      make_graph = None;
      make_async =
        Some
          (fun c ->
            let spread =
              Param.get_float ~schema:async_params c.a_params "speed_spread"
            in
            if spread < 0.0 then
              invalid_arg "Algo_registry: speed_spread must be >= 0";
            let speeds =
              if spread = 0.0 then None
              else
                Some
                  (Array.init c.a_k (fun _ ->
                       1.0 /. (1.0 +. Rng.float c.a_rng spread)))
            in
            let aenv = Async_env.create ?speeds c.a_tree ~k:c.a_k in
            let t = Bfdn.Bfdn_async.make aenv in
            Exec_env.of_async ~fault:c.a_fault ~probe:c.a_probe
              ~on_restart:(Bfdn.Bfdn_async.notify_restart t)
              (Bfdn.Bfdn_async.decide t) aenv);
    };
  ]

let () =
  (* Canonical names and aliases must never collide, and every entry
     must construct on at least one environment. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.make_tree = None && e.make_graph = None && e.make_async = None then
        invalid_arg ("Algo_registry: " ^ e.name ^ " has no constructor");
      List.iter
        (fun n ->
          if Hashtbl.mem seen n then
            invalid_arg ("Algo_registry: duplicate name " ^ n);
          Hashtbl.add seen n ())
        (e.name :: e.aliases))
    all

let find name =
  List.find_opt
    (fun e -> String.equal e.name name || List.mem name e.aliases)
    all

let names = List.map (fun e -> e.name) all

let tree_names =
  List.filter_map (fun e -> if (caps e).tree then Some e.name else None) all

let adaptive_names =
  List.filter_map (fun e -> if (caps e).adaptive then Some e.name else None) all

let graph_names =
  List.filter_map (fun e -> if (caps e).graph then Some e.name else None) all

let async_names =
  List.filter_map (fun e -> if (caps e).async then Some e.name else None) all

let choices_of filter =
  List.concat_map
    (fun e ->
      if filter e then List.map (fun n -> (n, e.name)) (e.name :: e.aliases)
      else [])
    all

let cli_choices = choices_of (fun e -> (caps e).tree)
let adaptive_cli_choices = choices_of (fun e -> (caps e).adaptive)

let checked_params e params =
  match Param.validate ~schema:e.params params with
  | Error msg -> invalid_arg (Printf.sprintf "Algo_registry: %s: %s" e.name msg)
  | Ok () -> ()

let resolve name =
  match find name with
  | None -> invalid_arg ("Algo_registry: unknown algorithm " ^ name)
  | Some e -> e

let default_rng rng = match rng with Some r -> r | None -> Rng.create 0

let instantiate ?(probe = Probe.noop) ?rng ?(params = []) ?fault ?shard_pool
    name env =
  let e = resolve name in
  match e.make_tree with
  | None ->
      invalid_arg
        ("Algo_registry: " ^ name
       ^ " does not run on the synchronous tree environment")
  | Some make ->
      checked_params e params;
      make { env; rng = default_rng rng; probe; params; fault; shard_pool }

let instantiate_graph ?rng ?(params = []) name g_env =
  let e = resolve name in
  match e.make_graph with
  | None ->
      invalid_arg
        ("Algo_registry: " ^ name ^ " does not run on the graph environment")
  | Some make ->
      checked_params e params;
      make { g_env; g_rng = default_rng rng; g_params = params }

let instantiate_async ?(probe = Probe.noop) ?rng ?(params = [])
    ?(fault = Env.fault_noop) name tree ~k =
  let e = resolve name in
  match e.make_async with
  | None ->
      invalid_arg
        ("Algo_registry: " ^ name
       ^ " does not run on the continuous-time environment")
  | Some make ->
      checked_params e params;
      make
        {
          a_tree = tree;
          a_k = k;
          a_rng = default_rng rng;
          a_probe = probe;
          a_params = params;
          a_fault = fault;
        }
