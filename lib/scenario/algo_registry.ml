module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Rng = Bfdn_util.Rng
module Probe = Bfdn_obs.Probe

type caps = { tree : bool; adaptive : bool; graph : bool; async : bool }

type ctx = {
  env : Env.t;
  rng : Rng.t;
  probe : Probe.t;
  params : Param.binding list;
  fault : Bfdn_faults.Fault_plan.t option;
}

type entry = {
  name : string;
  aliases : string list;
  doc : string;
  params : Param.spec list;
  caps : caps;
  make : (ctx -> Runner.algo) option;
}

let sync_tree = { tree = true; adaptive = true; graph = false; async = false }

(* BFDN's anchor-selection policy, exposed as a string parameter so the
   ablation variants are expressible in a serialized spec. *)
let policy_of_string ~rng = function
  | "least-loaded" -> Bfdn.Bfdn_algo.Least_loaded
  | "first-open" -> Bfdn.Bfdn_algo.First_open
  | "random-open" -> Bfdn.Bfdn_algo.Random_open rng
  | other ->
      invalid_arg
        ("Algo_registry: unknown anchor policy " ^ other
       ^ " (expected least-loaded, first-open or random-open)")

let bfdn_params =
  [
    {
      Param.key = "policy";
      doc = "anchor policy: least-loaded, first-open or random-open";
      default = Param.String "least-loaded";
    };
    {
      Param.key = "shortcut";
      doc = "re-anchor through the LCA when a DN excursion stalls (ablation)";
      default = Param.Bool false;
    };
    {
      Param.key = "fault_tolerant";
      doc =
        "crash-tolerant variant: detect silent robots via whiteboard \
         heartbeats and release their anchors";
      default = Param.Bool false;
    };
    {
      Param.key = "suspect_after";
      doc = "rounds of heartbeat silence before a robot is presumed lost";
      default = Param.Int 4;
    };
  ]

let rec_params =
  [
    {
      Param.key = "ell";
      doc = "recursion level l of BFDN_l (Theorem 10)";
      default = Param.Int 2;
    };
  ]

let all =
  [
    {
      name = "bfdn";
      aliases = [];
      doc =
        "Breadth-First Depth-Next, Algorithm 1 — 2n/k + D^2(min(log k, log \
         d)+3) rounds (Theorem 1)";
      params = bfdn_params;
      caps = sync_tree;
      make =
        Some
          (fun c ->
            let schema = bfdn_params in
            let policy =
              policy_of_string ~rng:c.rng
                (Param.get_string ~schema c.params "policy")
            in
            let shortcut = Param.get_bool ~schema c.params "shortcut" in
            let fault_tolerant =
              Param.get_bool ~schema c.params "fault_tolerant"
            in
            let suspect_after = Param.get_int ~schema c.params "suspect_after" in
            (* The ft variant reads the scenario's fault plan only for the
               whiteboard write-drop model; crashes and masks reach it
               through the environment like any other adversity. *)
            let drop =
              match c.fault with
              | None -> None
              | Some plan ->
                  Some
                    (fun ~round ~robot ->
                      Bfdn_faults.Fault_plan.drops_write plan ~round ~robot)
            in
            Bfdn.Bfdn_algo.algo
              (Bfdn.Bfdn_algo.make ~policy ~shortcut ~fault_tolerant
                 ~suspect_after ?drop ~probe:c.probe c.env));
    };
    {
      name = "bfdn-wr";
      aliases = [ "bfdn-planner" ];
      doc =
        "BFDN in the write-read/restricted-memory model, Algorithm 2 — \
         root-planner plus per-node whiteboards (Proposition 6)";
      params = [];
      caps = sync_tree;
      make =
        Some (fun c -> Bfdn.Bfdn_planner.algo (Bfdn.Bfdn_planner.make c.env));
    };
    {
      name = "bfdn-rec";
      aliases = [];
      doc =
        "recursive BFDN_l — divide-depth composition, 4n/k^(1/l) + O(D^(1+1/l)) \
         rounds (Theorem 10)";
      params = rec_params;
      caps = sync_tree;
      make =
        Some
          (fun c ->
            let ell = Param.get_int ~schema:rec_params c.params "ell" in
            Bfdn.Bfdn_rec.algo (Bfdn.Bfdn_rec.make ~ell c.env));
    };
    {
      name = "cte";
      aliases = [];
      doc =
        "Collective Tree Exploration of Fraigniaud et al. [10] — O(n/log k + \
         D) rounds, proportional branch splitting";
      params = [];
      caps = sync_tree;
      make = Some (fun c -> Bfdn_baselines.Cte.make ~probe:c.probe c.env);
    };
    {
      name = "cte-writeread";
      aliases = [];
      doc =
        "CTE with whiteboard-only communication — completion marks propagate \
         only as fast as robots carry them";
      params = [];
      caps = sync_tree;
      make = Some (fun c -> Bfdn_baselines.Cte_writeread.make c.env);
    };
    {
      name = "dfs";
      aliases = [];
      doc = "single-robot depth-first search — the 2(n-1) baseline";
      params = [];
      caps = sync_tree;
      make = Some (fun c -> Bfdn_baselines.Dfs_single.make c.env);
    };
    {
      name = "offline";
      aliases = [];
      doc =
        "offline Euler-tour split — 2(n/k + D) rounds with full knowledge of \
         the tree";
      params = [];
      caps = { sync_tree with adaptive = false };
      (* Reads the hidden tree up front (oracle), so it is meaningless
         against a lazily materialized adversarial world. *)
      make = Some (fun c -> Bfdn_baselines.Offline_split.make c.env);
    };
    {
      name = "random-walk";
      aliases = [];
      doc = "independent uniform random walks — naive randomized baseline";
      params = [];
      caps = sync_tree;
      make = Some (fun c -> Bfdn_baselines.Random_walk.make ~rng:c.rng c.env);
    };
    {
      name = "bfdn-graph";
      aliases = [];
      doc =
        "BFDN on non-tree graphs with a distance oracle (Proposition 9) — \
         driven by Bfdn.Bfdn_graph / the grid subcommand";
      params = [];
      caps = { tree = false; adaptive = false; graph = true; async = false };
      make = None;
    };
    {
      name = "bfdn-async";
      aliases = [];
      doc =
        "BFDN under the continuous-time relaxation (Remark 8) — driven by \
         Bfdn.Bfdn_async on Bfdn_sim.Async_env";
      params = [];
      caps = { tree = false; adaptive = false; graph = false; async = true };
      make = None;
    };
  ]

let () =
  (* Canonical names and aliases must never collide. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun n ->
          if Hashtbl.mem seen n then
            invalid_arg ("Algo_registry: duplicate name " ^ n);
          Hashtbl.add seen n ())
        (e.name :: e.aliases))
    all

let find name =
  List.find_opt
    (fun e -> String.equal e.name name || List.mem name e.aliases)
    all

let names = List.map (fun e -> e.name) all

let tree_names =
  List.filter_map
    (fun e -> if e.caps.tree && e.make <> None then Some e.name else None)
    all

let adaptive_names =
  List.filter_map
    (fun e -> if e.caps.adaptive && e.make <> None then Some e.name else None)
    all

let choices_of filter =
  List.concat_map
    (fun e ->
      if filter e then List.map (fun n -> (n, e.name)) (e.name :: e.aliases)
      else [])
    all

let cli_choices = choices_of (fun e -> e.caps.tree && e.make <> None)

let adaptive_cli_choices =
  choices_of (fun e -> e.caps.adaptive && e.make <> None)

let instantiate ?(probe = Probe.noop) ?rng ?(params = []) ?fault name env =
  match find name with
  | None -> invalid_arg ("Algo_registry: unknown algorithm " ^ name)
  | Some e -> (
      match e.make with
      | None ->
          invalid_arg
            ("Algo_registry: " ^ name
           ^ " does not run on the synchronous tree environment")
      | Some make -> (
          match Param.validate ~schema:e.params params with
          | Error msg ->
              invalid_arg
                (Printf.sprintf "Algo_registry: %s: %s" name msg)
          | Ok () ->
              let rng =
                match rng with Some r -> r | None -> Rng.create 0
              in
              make { env; rng; probe; params; fault }))
