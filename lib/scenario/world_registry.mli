(** The single world-dispatch table of the repository.

    Wraps every {!Bfdn_trees.Tree_gen} instance family, the warehouse
    grid generator and every {!Bfdn_sim.Adversary} policy behind named,
    schema-carrying entries. The CLI, the bench harness and
    {!Scenario.run} resolve world and policy names here — there is no
    other family→generator table in the repository. *)

type ctx = { rng : Bfdn_util.Rng.t; params : Param.binding list }

type kind =
  | Tree of (ctx -> Bfdn_trees.Tree.t)
      (** a fixed hidden tree, generated up front *)
  | Grid of (ctx -> Bfdn_graphs.Grid.t)
      (** a warehouse grid — a graph world that keeps its geometry (the
          [grid] subcommand renders it); {!Scenario.run} drives it
          through {!build_graph} *)
  | Graph of (ctx -> Bfdn_graphs.Graph.t * int)
      (** a general connected graph with its origin *)

type entry = { name : string; doc : string; params : Param.spec list; kind : kind }

type policy_entry = {
  p_name : string;
  p_doc : string;
  p_params : Param.spec list;
      (** always includes [capacity] and [depth_budget] *)
  p_make : ctx -> Bfdn_sim.Adversary.t;
      (** each result must drive exactly one environment (see
          {!Bfdn_sim.Adversary.world}) *)
}

val worlds : entry list

val find : string -> entry option

val tree_names : string list
(** Names whose kind is [Tree] — the [run]/[sweep] world vocabulary
    (identical to {!Bfdn_trees.Tree_gen.families}, asserted in tests). *)

val graph_names : string list
(** Names whose kind is [Grid] or [Graph] — worlds {!build_graph}
    accepts (the [bfdn-graph] scenario vocabulary). *)

val cli_world_choices : (string * string) list
(** [(token, name)] pairs for tree worlds, for CLI enums. *)

val build_tree :
  ?rng:Bfdn_util.Rng.t -> ?params:Param.binding list -> string ->
  Bfdn_trees.Tree.t
(** Generate a named tree world. [rng] defaults to a fresh stream
    (seed 0); deterministic families ignore it.
    @raise Invalid_argument on an unknown or non-tree name, or
    parameters violating the schema. *)

val build_graph :
  ?rng:Bfdn_util.Rng.t -> ?params:Param.binding list -> string ->
  Bfdn_graphs.Graph.t * Bfdn_graphs.Graph.node
(** Generate a named graph world with its origin. Grid worlds yield
    their underlying port-labeled graph and origin cell.
    @raise Invalid_argument on an unknown or tree name, or parameters
    violating the schema. *)

val scale_of_params : Param.binding list -> string
(** The [scale] parameter of a tree-world binding list (["eager"] by
    default, ["lazy"] for the huge tier's lazily materialized worlds).
    Value checking is the caller's job ({!Scenario.validate} rejects
    anything else). *)

val deterministic_tree : ?params:Param.binding list -> string -> bool
(** Whether the named world is an eagerly built tree whose generator
    ignores the instance RNG stream
    ({!Bfdn_trees.Tree_gen.deterministic_family}) — exactly the worlds
    where every seed of one spec hides the identical tree, so a seed
    batch may build it once and share it. *)

val build_lazy :
  ?seed:int -> ?params:Param.binding list -> string ->
  Bfdn_sim.Lazy_world.t
(** Instantiate a named tree family as a lazily materialized world
    ([scale=lazy]). [seed] feeds the ["random"] family's hash.
    @raise Invalid_argument on an unknown name, parameters violating the
    schema, or a family without lazy support
    ({!Bfdn_sim.Lazy_world.supported}). *)

(** {2 Adaptive adversary policies} *)

val policies : policy_entry list

val find_policy : string -> policy_entry option

val policy_names : string list

val cli_policy_choices : (string * string) list

val build_adversary :
  ?rng:Bfdn_util.Rng.t -> ?params:Param.binding list -> string ->
  Bfdn_sim.Adversary.t
(** Instantiate a named policy (fresh adversary per call).
    @raise Invalid_argument on an unknown name or bad parameters. *)
