(** Breadth-First Depth-Next (Algorithm 1), complete-communication model.

    Behaviour of each robot: when at the root it is {e re-anchored} to an
    open node of minimum depth carrying the fewest anchored robots, and
    walks to it with breadth-first ([BF]) moves along its stacked port
    path; once the stack is empty it performs depth-next ([DN]) moves —
    through an adjacent dangling edge not selected by an earlier robot of
    the same round if one exists, one step up otherwise — until it reaches
    the root again.

    The implementation is mask-aware: robots whose move the environment's
    adversarial mask disallows (Section 4.2) are skipped in the
    sequential-decision loop, exactly as prescribed by the paper's
    adversarial variant. With the default all-allowed mask this is plain
    Algorithm 1.

    Guarantee (Theorem 1): exploration plus return in at most
    [2n/k + D^2 (min(log k, log Δ) + 3)] rounds. *)

type t

(** Anchor-selection policy, for the ablation study. The paper's policy —
    backed by the urn-game analysis — is {!Least_loaded}. *)
type policy =
  | Least_loaded  (** fewest anchored robots, ties to the smallest id *)
  | First_open  (** smallest id among minimum-depth open nodes *)
  | Random_open of Bfdn_util.Rng.t  (** uniform among minimum-depth open nodes *)

val make :
  ?policy:policy -> ?shortcut:bool -> ?probe:Bfdn_obs.Probe.t -> Bfdn_sim.Env.t -> t
(** [probe] (default {!Bfdn_obs.Probe.noop}) receives [on_reanchor] at
    every anchor switch (with the anchor's depth and the breadth-first
    route length) and [on_select ~idle] after every selection round.

    [shortcut] (default [false]) enables the ablation variant that
    re-anchors a robot the moment its depth-next excursion stalls, routing
    it through the lowest common ancestor instead of the root. The paper
    deliberately keeps the walk home — it is what makes the write-read
    implementation possible (Section 2) — so [shortcut] exists to measure
    what that choice costs in the complete-communication model. Theorem 1
    is {e not} claimed for this variant. *)

val algo : t -> Bfdn_sim.Runner.algo
(** Runner hook. [finished] is "tree explored and all robots at the root"
    (under break-down masks, compose with {!Bfdn_sim.Env.fully_explored}
    instead, since blocked robots may never return). *)

(** {2 Instrumentation} *)

val anchors : t -> int array
(** Current anchor of every robot. *)

val reanchors_at_depth : t -> int -> int
(** Number of [Reanchor] calls that returned an anchor at this depth so
    far — the quantity bounded by Lemma 2. *)

val reanchors_total : t -> int

val check_claim4 : t -> bool
(** Claim 4: every open node of the discovered tree lies in the subtree of
    some robot's anchor. O(open · k · D); for tests. *)
