(** Breadth-First Depth-Next (Algorithm 1), complete-communication model.

    Behaviour of each robot: when at the root it is {e re-anchored} to an
    open node of minimum depth carrying the fewest anchored robots, and
    walks to it with breadth-first ([BF]) moves along its stacked port
    path; once the stack is empty it performs depth-next ([DN]) moves —
    through an adjacent dangling edge not selected by an earlier robot of
    the same round if one exists, one step up otherwise — until it reaches
    the root again.

    The implementation is mask-aware: robots whose move the environment's
    adversarial mask disallows (Section 4.2) are skipped in the
    sequential-decision loop, exactly as prescribed by the paper's
    adversarial variant. With the default all-allowed mask this is plain
    Algorithm 1.

    Guarantee (Theorem 1): exploration plus return in at most
    [2n/k + D^2 (min(log k, log Δ) + 3)] rounds. *)

type t

(** Anchor-selection policy, for the ablation study. The paper's policy —
    backed by the urn-game analysis — is {!Least_loaded}. *)
type policy =
  | Least_loaded  (** fewest anchored robots, ties to the smallest id *)
  | First_open  (** smallest id among minimum-depth open nodes *)
  | Random_open of Bfdn_util.Rng.t  (** uniform among minimum-depth open nodes *)

val make :
  ?policy:policy ->
  ?shortcut:bool ->
  ?probe:Bfdn_obs.Probe.t ->
  ?fault_tolerant:bool ->
  ?suspect_after:int ->
  ?drop:(round:int -> robot:int -> bool) ->
  ?shard_pool:Bfdn_util.Shard_pool.t ->
  Bfdn_sim.Env.t ->
  t
(** [probe] (default {!Bfdn_obs.Probe.noop}) receives [on_reanchor] at
    every anchor switch (with the anchor's depth and the breadth-first
    route length) and [on_select ~idle] after every selection round.

    [shortcut] (default [false]) enables the ablation variant that
    re-anchors a robot the moment its depth-next excursion stalls, routing
    it through the lowest common ancestor instead of the root. The paper
    deliberately keeps the walk home — it is what makes the write-read
    implementation possible (Section 2) — so [shortcut] exists to measure
    what that choice costs in the complete-communication model. Theorem 1
    is {e not} claimed for this variant.

    [fault_tolerant] (default [false]) enables the crash-tolerant
    variant: every acting robot heart-beats on the (conceptual) root
    whiteboard, and a robot silent for more than [suspect_after]
    (default [4]) rounds is presumed lost — its anchor is released so
    survivors re-cover its subtree, and termination stops waiting for
    it. A later surviving heartbeat (crash-with-restart, or a false
    positive) revives the robot. [drop] (default: never; pass
    [Bfdn_faults.Fault_plan.drops_write]) models lossy whiteboard
    writes: dropped beats delay detection but never make it unsound.
    The probe's [on_robot_lost]/[on_robot_revived] hooks fire at each
    transition. Theorem 1 is {e not} claimed under faults; the property
    kept (and tested) is that exploration completes whenever at least
    one robot survives.

    [shard_pool] spreads the route-computation pass of every selection
    round over the pool's domain team. The decision passes stay
    sequential in robot-index order, so sharded and unsharded runs are
    bit-for-bit identical — sharding is a pure latency optimization for
    big single runs (route fills dominate at large k and depth). The
    pool is borrowed, not owned: the caller shuts it down. Per-event
    probes ([events]) fall back to the sequential path. *)

val algo : t -> Bfdn_sim.Runner.algo
(** Runner hook. [finished] is "tree explored and all robots at the root"
    (under break-down masks, compose with {!Bfdn_sim.Env.fully_explored}
    instead, since blocked robots may never return). With
    [fault_tolerant], robots presumed lost are exempted from the
    all-at-root condition, and the algo is named ["bfdn-ft"]. *)

(** {2 Instrumentation} *)

val anchors : t -> int array
(** Current anchor of every robot. *)

val reanchors_at_depth : t -> int -> int
(** Number of [Reanchor] calls that returned an anchor at this depth so
    far — the quantity bounded by Lemma 2. *)

val reanchors_total : t -> int

val fault_tolerant : t -> bool

val robots_lost : t -> int
(** Loss declarations so far ([0] unless [fault_tolerant]). A robot
    buried, revived and buried again counts twice. *)

val robots_revived : t -> int

val presumed_lost : t -> int array
(** Robots currently buried, in increasing id order. *)

val check_claim4 : t -> bool
(** Claim 4: every open node of the discovered tree lies in the subtree of
    some robot's anchor. O(open · k · D); for tests. *)
