(** BFDN on non-tree graphs (Section 4.3).

    Requires the distance-to-origin knowledge granted by the paper (exact
    in grid graphs with rectangular obstacles [12]; provided by
    {!Bfdn_graphs.Graph_env}'s oracle in general). A robot crossing a
    dangling edge backtracks and {e closes} it when the far endpoint is
    already explored or not strictly further from the origin; otherwise
    the edge joins the growing BFS tree, on which plain BFDN runs.

    Guarantee (Proposition 9): at most
    [2n/k + D^2 (min(log Δ, log k) + 3)] rounds for a graph with [n]
    edges, radius [D] and maximum degree [Δ]; the never-closed edges form
    a BFS tree of the graph. *)

type t

val make : Bfdn_graphs.Graph_env.t -> t

val finished : t -> bool
(** Fully explored and every robot back at the origin. *)

val exec_env : t -> Bfdn_sim.Exec_env.t
(** Package the algorithm and its graph environment as a generic
    execution environment, so {!Bfdn_sim.Exec_env.run} (and through it
    [Scenario.run]) drives graph exploration with the same round loop,
    probes and fault plans as trees. The adapter lives here rather than
    in [lib/sim] because [lib/sim] does not depend on [bfdn_graphs]. *)

type result = {
  rounds : int;
  explored : bool;
  at_origin : bool;
  closed_edges : int;
  hit_round_limit : bool;
}

val run : ?max_rounds:int -> t -> result
(** The graph environment has its own move type, so the driving loop lives
    here rather than in {!Bfdn_sim.Runner}. *)

val reanchors_total : t -> int
