module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree
module Runner = Bfdn_sim.Runner
module Rng = Bfdn_util.Rng
module Heartbeat = Bfdn_faults.Heartbeat

type policy = Least_loaded | First_open | Random_open of Rng.t

(* Crash-tolerance bookkeeping. Detection is purely whiteboard-local:
   every acting robot writes a heartbeat, and a robot silent for more
   than [suspect_after] rounds is {e buried} — its anchor is handed back
   to the pool (accounted at the root) so the survivors re-cover its
   subtree, and the termination condition stops waiting for it. Burial
   is reversible: a fresh surviving heartbeat (a restarted robot, or a
   false positive under whiteboard write drops) revives the robot, which
   then rejoins the fleet through the ordinary walk-home/re-anchor flow. *)
type ft = {
  hb : Heartbeat.t;
  suspect_after : int;
  buried : bool array;
  mutable lost : int;
  mutable revived : int;
}

(* A robot's pending breadth-first route, int-coded into a reusable
   per-robot buffer: -1 = Up, p >= 0 = Via_port p. The slice
   [route_pos, route_len) holds the moves left to reach the anchor. *)
type rstate = {
  mutable anchor : int;
  mutable route : int array;
  mutable route_pos : int;
  mutable route_len : int;
}

type t = {
  env : Env.t;
  policy : policy;
  shortcut : bool;
  ft : ft option;
  probe : Bfdn_obs.Probe.t; (* anchor-switch and idle-robot hooks *)
  (* Optional domain team for the route-computation pass of select; the
     decision passes stay sequential (see [select_sharded]). *)
  shard : Bfdn_util.Shard_pool.t option;
  (* Robots whose breadth-first route is deferred to the sharded fill
     pass this round: indices [0, pending_n) in robot order. *)
  pending : int array;
  robots : rstate array;
  (* Per-node scratch tracks the view's growable id space
     ({!Partial_tree.id_bound}), re-ensured at the top of every select:
     on a lazily materialized huge world the algorithm holds O(explored)
     state instead of O(capacity). *)
  mutable anchor_load : int array;
  (* Cursor over the ports of each node: everything before it is known to
     be non-dangling (or dangling-but-selected-this-round, hence resolved
     by the end of the round). Keeps the depth-next dangling lookup O(1)
     amortized even on high-degree nodes. *)
  mutable dangle_cursor : int array;
  mutable reanchor_counts : int array; (* indexed by anchor depth *)
  mutable reanchors_total : int;
  mutable summary_sent : bool; (* probe reanchor summary fired once *)
  (* Round-local count of dangling edges selected by earlier robots at
     each node, stamped per select call. It replaces a set of (node, port)
     pairs: the ports selected at a node within one round are always the
     first unselected dangling ports past the cursor (each robot takes the
     next one), so a count per node identifies them exactly. *)
  mutable sel_stamp : int array;
  mutable sel_cnt : int array;
  mutable sel_epoch : int;
  moves : Env.move array; (* returned by select, refilled each round *)
  (* Cached [Via_port p] values indexed by port, so routing and depth-next
     moves allocate nothing in steady state. Per-instance: instances may
     run in parallel domains under the batch engine. *)
  mutable via : Env.move array;
}

let make ?(policy = Least_loaded) ?(shortcut = false)
    ?(probe = Bfdn_obs.Probe.noop) ?(fault_tolerant = false) ?(suspect_after = 4)
    ?drop ?shard_pool env =
  let n = Partial_tree.id_bound (Env.view env) in
  let root = Partial_tree.root (Env.view env) in
  if suspect_after < 1 then
    invalid_arg "Bfdn_algo.make: suspect_after must be >= 1";
  {
    env;
    policy;
    shortcut;
    ft =
      (if not fault_tolerant then None
       else
         Some
           {
             hb = Heartbeat.create ?drop ~k:(Env.k env) ();
             suspect_after;
             buried = Array.make (Env.k env) false;
             lost = 0;
             revived = 0;
           });
    probe;
    shard = shard_pool;
    pending = Array.make (Env.k env) 0;
    robots =
      Array.init (Env.k env) (fun _ ->
          { anchor = root; route = Array.make 8 0; route_pos = 0; route_len = 0 });
    anchor_load =
      (let load = Array.make n 0 in
       load.(root) <- Env.k env;
       load);
    dangle_cursor = Array.make n 0;
    reanchor_counts = Array.make (min (Env.capacity env + 2) (n + 2)) 0;
    reanchors_total = 0;
    summary_sent = false;
    sel_stamp = Array.make n (-1);
    sel_cnt = Array.make n 0;
    sel_epoch = 0;
    moves = Array.make (Env.k env) Env.Stay;
    via = Array.init 8 (fun p -> Env.Via_port p);
  }

(* Growth preserves contents and the 0/-1 defaults, so behaviour is
   byte-identical to a full preallocation; only ids below
   [Partial_tree.id_bound] (explored nodes) are ever indexed. *)
let grow_int_array a cap fill =
  let bigger = Array.make cap fill in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

let ensure_nodes t =
  let need = Partial_tree.id_bound (Env.view t.env) in
  if need > Array.length t.anchor_load then begin
    let cap = max need (2 * Array.length t.anchor_load) in
    t.anchor_load <- grow_int_array t.anchor_load cap 0;
    t.dangle_cursor <- grow_int_array t.dangle_cursor cap 0;
    t.sel_stamp <- grow_int_array t.sel_stamp cap (-1);
    t.sel_cnt <- grow_int_array t.sel_cnt cap 0
  end

let ensure_depth t d =
  if d + 1 >= Array.length t.reanchor_counts then
    t.reanchor_counts <-
      grow_int_array t.reanchor_counts
        (max (d + 2) (2 * Array.length t.reanchor_counts))
        0

let via t p =
  let len = Array.length t.via in
  if p >= len then begin
    let len' =
      let l = ref len in
      while p >= !l do
        l := 2 * !l
      done;
      !l
    in
    t.via <- Array.init len' (fun q -> Env.Via_port q)
  end;
  t.via.(p)

let next_dangling t view pos =
  let nports = Partial_tree.num_ports view pos in
  (* The cursor may permanently skip non-dangling ports, but a dangling
     port selected by an earlier robot of the same round is only skipped
     transiently: if that robot's move is vetoed (reactive blocking,
     Remark 8) the port stays dangling and must remain reachable. *)
  let skip0 = if t.sel_stamp.(pos) = t.sel_epoch then t.sel_cnt.(pos) else 0 in
  let rec scan c ~skip ~commit =
    if c >= nports then -1
    else if Partial_tree.is_port_dangling view pos c then
      if skip > 0 then scan (c + 1) ~skip:(skip - 1) ~commit:false else c
    else begin
      if commit then t.dangle_cursor.(pos) <- c + 1;
      scan (c + 1) ~skip ~commit
    end
  in
  scan t.dangle_cursor.(pos) ~skip:skip0 ~commit:true

let mark_selected t pos =
  if t.sel_stamp.(pos) = t.sel_epoch then t.sel_cnt.(pos) <- t.sel_cnt.(pos) + 1
  else begin
    t.sel_stamp.(pos) <- t.sel_epoch;
    t.sel_cnt.(pos) <- 1
  end

let pick_anchor t view =
  let d = Partial_tree.min_open_depth_raw view in
  if d < 0 then Partial_tree.root view
  else
    match t.policy with
    | Least_loaded ->
        (* Unique minimum (load, then id): independent of bucket order. *)
        Partial_tree.fold_open_at_depth view d ~init:(-1) ~f:(fun b v ->
            if
              b < 0
              || t.anchor_load.(v) < t.anchor_load.(b)
              || (t.anchor_load.(v) = t.anchor_load.(b) && v < b)
            then v
            else b)
    | First_open -> Partial_tree.fold_open_at_depth view d ~init:max_int ~f:min
    | Random_open rng ->
        (* Canonical order: the draw maps to the sorted candidate set, so
           the result is independent of the open-bucket iteration order. *)
        Rng.pick rng (Array.of_list (Partial_tree.open_nodes_at_depth view d))

let ensure_route r needed =
  if Array.length r.route < needed then begin
    let cap = ref (Array.length r.route) in
    while !cap < needed do
      cap := 2 * !cap
    done;
    r.route <- Array.make !cap 0
  end

(* Moves from [src] to [dst] along the discovered tree, written into the
   robot's reusable buffer: up to the lowest common ancestor, then down the
   port path read off the parent-port cache. With [src = root] this is the
   plain Algorithm 1 stack. *)
let fill_route view r src dst =
  let rec lift u du w dw ups =
    if u = w then (u, ups)
    else if du >= dw then
      lift (Partial_tree.parent_id view u) (du - 1) w dw (ups + 1)
    else lift u du (Partial_tree.parent_id view w) (dw - 1) ups
  in
  let lca, ups =
    lift src (Partial_tree.depth_of view src) dst (Partial_tree.depth_of view dst) 0
  in
  let downs = Partial_tree.depth_of view dst - Partial_tree.depth_of view lca in
  let len = ups + downs in
  ensure_route r len;
  Array.fill r.route 0 ups (-1);
  let w = ref dst in
  for j = len - 1 downto ups do
    let p = Partial_tree.parent_port view !w in
    if p < 0 then invalid_arg "Bfdn_algo.fill_route: broken parent link";
    r.route.(j) <- p;
    w := Partial_tree.parent_id view !w
  done;
  r.route_pos <- 0;
  r.route_len <- len

(* The shared-state half of a re-anchor: anchor-load accounting, the
   anchor pick and the reanchor statistics. Everything here reads and
   writes state shared across robots, so it always runs in the
   sequential decision pass (in robot-index order); the route fill —
   a pure function of the view writing only the robot's own buffer —
   can then run out of line (and out of order). *)
let reanchor_decide t view i =
  let r = t.robots.(i) in
  t.anchor_load.(r.anchor) <- t.anchor_load.(r.anchor) - 1;
  let v = pick_anchor t view in
  r.anchor <- v;
  t.anchor_load.(v) <- t.anchor_load.(v) + 1;
  let d = Partial_tree.depth_of view v in
  ensure_depth t d;
  t.reanchor_counts.(d) <- t.reanchor_counts.(d) + 1;
  t.reanchors_total <- t.reanchors_total + 1;
  d

let reanchor t i =
  let view = Env.view t.env in
  let r = t.robots.(i) in
  let pos = Env.position t.env i in
  let d = reanchor_decide t view i in
  fill_route view r pos r.anchor;
  (* Per-event hook only under [events]: a trap instance reanchors ~100
     robots per round at k = 512, so even no-op calls here would break
     the aggregate probe's overhead budget. Aggregate consumers get the
     counts from the end-of-run summary instead. *)
  if t.probe.Bfdn_obs.Probe.events then
    t.probe.Bfdn_obs.Probe.on_reanchor ~robot:i ~depth:d ~route_len:r.route_len

(* Pop the next breadth-first move off the robot's route. *)
let pop_route t r =
  let c = r.route.(r.route_pos) in
  r.route_pos <- r.route_pos + 1;
  if c < 0 then Env.Up else via t c

(* Fault-tolerance prepass: heartbeats, revivals and burials, before any
   move is decided, so this round's re-anchoring already sees the
   corrected anchor loads. A buried robot that is in fact alive (false
   positive under write drops, or not yet revived because its beat
   dropped again) still acts normally below — burial only affects anchor
   accounting and the termination condition, never legality. *)
let ft_prepass t f root =
  let round = Env.round t.env in
  let k = Env.k t.env in
  for i = 0 to k - 1 do
    if Env.allowed t.env i then begin
      Heartbeat.beat f.hb ~robot:i ~round;
      if f.buried.(i) && Heartbeat.last_seen f.hb i = round then begin
        f.buried.(i) <- false;
        f.revived <- f.revived + 1;
        if t.probe.Bfdn_obs.Probe.enabled then
          t.probe.Bfdn_obs.Probe.on_robot_revived ~robot:i ~round
      end
    end;
    if
      (not f.buried.(i))
      && Heartbeat.stale f.hb ~robot:i ~round ~after:f.suspect_after
    then begin
      let r = t.robots.(i) in
      t.anchor_load.(r.anchor) <- t.anchor_load.(r.anchor) - 1;
      r.anchor <- root;
      t.anchor_load.(root) <- t.anchor_load.(root) + 1;
      (* Drop the pending route: if the robot is in fact alive it falls
         back to depth-next moves and walks home, which is always legal. *)
      r.route_pos <- 0;
      r.route_len <- 0;
      f.buried.(i) <- true;
      f.lost <- f.lost + 1;
      if t.probe.Bfdn_obs.Probe.enabled then
        t.probe.Bfdn_obs.Probe.on_robot_lost ~robot:i ~round
          ~latency:(Heartbeat.missed f.hb ~robot:i ~round)
    end
  done

let select_seq t =
  let view = Env.view t.env in
  let root = Partial_tree.root view in
  ensure_nodes t;
  let k = Env.k t.env in
  let moves = t.moves in
  Array.fill moves 0 k Env.Stay;
  t.sel_epoch <- t.sel_epoch + 1;
  (match t.ft with None -> () | Some f -> ft_prepass t f root);
  for i = 0 to k - 1 do
    if Env.allowed t.env i then begin
      let r = t.robots.(i) in
      let pos = Env.position t.env i in
      if pos = root then reanchor t i;
      if r.route_pos < r.route_len then
        (* Breadth-first move along the stacked route. *)
        moves.(i) <- pop_route t r
      else begin
        (* Depth-next move. *)
        let p = next_dangling t view pos in
        if p >= 0 then begin
          mark_selected t pos;
          moves.(i) <- via t p
        end
        else if pos <> root then begin
          if t.shortcut && Partial_tree.min_open_depth_raw view >= 0 then
            (* Ablation: re-anchor in place instead of walking home first
               (the paper keeps the walk for the write-read model; see
               Section 2). *)
            reanchor t i;
          if r.route_pos < r.route_len then moves.(i) <- pop_route t r
          else moves.(i) <- Env.Up
        end
      end
    end
  done;
  (* The O(k) idle scan is per-event instrumentation ([events] only):
     aggregate consumers get the idle count for free from Env.apply's
     on_round. Pattern match, not [=]: polymorphic equality on the move
     variant would cost a caml_compare call per robot. *)
  if t.probe.Bfdn_obs.Probe.events then begin
    let idle = ref 0 in
    for i = 0 to k - 1 do
      match moves.(i) with Env.Stay -> incr idle | _ -> ()
    done;
    t.probe.Bfdn_obs.Probe.on_select ~idle:!idle
  end;
  moves

(* Sharded select: same decisions as [select_seq], bit for bit, with the
   route computation spread over a domain team. Three passes —

   A. sequential, robot order: every read/write of cross-robot state
      (anchor loads in [pick_anchor], the per-node selected-dangling
      counters, the dangle cursors). A robot that re-anchors to a node
      other than its position has its route {e deferred}: only the fact
      that the route will be non-empty matters for this round's control
      flow (it will pop, not depth-next), and that is exactly
      [anchor <> position].
   B. parallel: [fill_route] for the deferred robots. The fill is a pure
      function of the (frozen-during-select) view writing only the
      robot's own buffer, so chunk scheduling cannot be observed.
   C. sequential, robot order: pop the first route move. Kept out of the
      parallel pass because popping grows the shared [via] cache; the
      cache's contents are index-deterministic, so a sequential pass in
      robot order reproduces the unsharded layout exactly.

   The merge is therefore "stable robot-index order" by construction:
   every shared-state mutation happens in the same order as in
   [select_seq], and 1-vs-N shards is byte-identical (asserted by the
   determinism suite). Per-event probes still use the sequential path —
   their [on_reanchor] hook wants the route length at decision time. *)
let select_sharded t pool =
  let view = Env.view t.env in
  let root = Partial_tree.root view in
  ensure_nodes t;
  let k = Env.k t.env in
  let moves = t.moves in
  Array.fill moves 0 k Env.Stay;
  t.sel_epoch <- t.sel_epoch + 1;
  (match t.ft with None -> () | Some f -> ft_prepass t f root);
  let pending = t.pending in
  let np = ref 0 in
  let defer_or_depth_next i r pos =
    if r.anchor <> pos then begin
      pending.(!np) <- i;
      incr np;
      true
    end
    else begin
      (* Re-anchored to its own position: the route is empty, exactly as
         [fill_route view r pos pos] would leave it. *)
      r.route_pos <- 0;
      r.route_len <- 0;
      false
    end
  in
  for i = 0 to k - 1 do
    if Env.allowed t.env i then begin
      let r = t.robots.(i) in
      let pos = Env.position t.env i in
      if pos = root then begin
        ignore (reanchor_decide t view i : int);
        if not (defer_or_depth_next i r pos) then begin
          (* Anchor is the root itself: depth-next at the root. *)
          let p = next_dangling t view pos in
          if p >= 0 then begin
            mark_selected t pos;
            moves.(i) <- via t p
          end
        end
      end
      else if r.route_pos < r.route_len then moves.(i) <- pop_route t r
      else begin
        let p = next_dangling t view pos in
        if p >= 0 then begin
          mark_selected t pos;
          moves.(i) <- via t p
        end
        else if t.shortcut && Partial_tree.min_open_depth_raw view >= 0 then begin
          ignore (reanchor_decide t view i : int);
          if not (defer_or_depth_next i r pos) then moves.(i) <- Env.Up
        end
        else moves.(i) <- Env.Up
      end
    end
  done;
  if !np > 0 then begin
    let robots = t.robots and env = t.env in
    Bfdn_util.Shard_pool.run pool ~n:!np (fun idx ->
        let i = pending.(idx) in
        let r = robots.(i) in
        fill_route view r (Env.position env i) r.anchor);
    for idx = 0 to !np - 1 do
      let i = pending.(idx) in
      moves.(i) <- pop_route t robots.(i)
    done
  end;
  moves

let select t =
  match t.shard with
  | Some pool when not t.probe.Bfdn_obs.Probe.events -> select_sharded t pool
  | _ -> select_seq t

(* Fired once, the first time [finished] holds: hand the probe the
   reanchor statistics accumulated (at zero marginal cost) during the
   run. The copy is trimmed to the depths actually used. *)
let send_summary t =
  t.summary_sent <- true;
  let counts = t.reanchor_counts in
  let hi = ref (Array.length counts - 1) in
  while !hi >= 0 && counts.(!hi) = 0 do
    decr hi
  done;
  t.probe.Bfdn_obs.Probe.on_reanchor_summary ~total:t.reanchors_total
    ~by_depth:(Array.sub counts 0 (!hi + 1))

(* Crash-tolerant termination: explored, and every robot not presumed
   lost is back at the root. Waiting for buried robots would spin until
   the round bound whenever a crash is permanent. *)
let ft_finished f env =
  Env.fully_explored env
  &&
  let root = Partial_tree.root (Env.view env) in
  let ok = ref true in
  for i = 0 to Env.k env - 1 do
    if (not f.buried.(i)) && Env.position env i <> root then ok := false
  done;
  !ok

let algo t =
  {
    Runner.name = (match t.ft with None -> "bfdn" | Some _ -> "bfdn-ft");
    select = (fun _ -> select t);
    finished =
      (fun env ->
        let fin =
          match t.ft with
          | None -> Env.fully_explored env && Env.all_at_root env
          | Some f -> ft_finished f env
        in
        if fin && t.probe.Bfdn_obs.Probe.enabled && not t.summary_sent then
          send_summary t;
        fin);
  }

let anchors t = Array.map (fun r -> r.anchor) t.robots

let reanchors_at_depth t d =
  if d < 0 || d >= Array.length t.reanchor_counts then 0
  else t.reanchor_counts.(d)

let reanchors_total t = t.reanchors_total

let fault_tolerant t = t.ft <> None
let robots_lost t = match t.ft with None -> 0 | Some f -> f.lost
let robots_revived t = match t.ft with None -> 0 | Some f -> f.revived

let presumed_lost t =
  match t.ft with
  | None -> [||]
  | Some f ->
      let acc = ref [] in
      for i = Array.length f.buried - 1 downto 0 do
        if f.buried.(i) then acc := i :: !acc
      done;
      Array.of_list !acc

let check_claim4 t =
  let view = Env.view t.env in
  let anchor_list = Array.to_list (anchors t) in
  let covered v = List.exists (fun a -> Partial_tree.is_ancestor view a v) anchor_list in
  let all_open_covered acc v =
    acc && ((not (Partial_tree.is_open view v)) || covered v)
  in
  Partial_tree.fold_explored view ~init:true ~f:all_open_covered
