module Rng = Bfdn_util.Rng
module Mathx = Bfdn_util.Mathx

type board = {
  delta : int;
  loads : int array;
  virgin : bool array;
  mutable steps : int;
}

let create ~delta ~k =
  if k < 1 then invalid_arg "Urn_game.create: k must be >= 1";
  if delta < 1 then invalid_arg "Urn_game.create: delta must be >= 1";
  { delta; loads = Array.make k 1; virgin = Array.make k true; steps = 0 }

let create_custom ~delta ~loads ~virgin =
  if delta < 1 then invalid_arg "Urn_game.create_custom: delta must be >= 1";
  if Array.length loads <> Array.length virgin then
    invalid_arg "Urn_game.create_custom: length mismatch";
  if Array.length loads = 0 then invalid_arg "Urn_game.create_custom: no urns";
  if Array.exists (fun l -> l < 0) loads then
    invalid_arg "Urn_game.create_custom: negative load";
  { delta; loads = Array.copy loads; virgin = Array.copy virgin; steps = 0 }

let k b = Array.length b.loads
let delta b = b.delta
let load b i = b.loads.(i)
let is_virgin b i = b.virgin.(i)
let steps b = b.steps

let virgin_count b =
  let c = ref 0 in
  Array.iter (fun v -> if v then incr c) b.virgin;
  !c

let virgin_balls b =
  let c = ref 0 in
  Array.iteri (fun i v -> if v then c := !c + b.loads.(i)) b.virgin;
  !c

let finished b =
  let ok = ref true in
  Array.iteri (fun i v -> if v && b.loads.(i) < b.delta then ok := false) b.virgin;
  !ok

type player = board -> forbidden:int -> int
type adversary = board -> int option

let argmin_by b ~candidate ~better =
  let best = ref (-1) in
  for i = 0 to k b - 1 do
    if candidate i && (!best < 0 || better i !best) then best := i
  done;
  !best

let player_least_loaded b ~forbidden:_ =
  let virgin = argmin_by b ~candidate:(fun i -> b.virgin.(i))
      ~better:(fun i j -> b.loads.(i) < b.loads.(j)) in
  if virgin >= 0 then virgin
  else
    argmin_by b ~candidate:(fun _ -> true)
      ~better:(fun i j -> b.loads.(i) < b.loads.(j))

let player_most_loaded b ~forbidden:_ =
  let virgin = argmin_by b ~candidate:(fun i -> b.virgin.(i))
      ~better:(fun i j -> b.loads.(i) > b.loads.(j)) in
  if virgin >= 0 then virgin
  else
    argmin_by b ~candidate:(fun _ -> true)
      ~better:(fun i j -> b.loads.(i) > b.loads.(j))

let player_random rng b ~forbidden:_ =
  let virgins = ref [] in
  Array.iteri (fun i v -> if v then virgins := i :: !virgins) b.virgin;
  match !virgins with
  | [] -> Rng.int rng (k b)
  | vs -> Rng.pick rng (Array.of_list vs)

let adversary_greedy b =
  let repeat =
    argmin_by b
      ~candidate:(fun i -> (not b.virgin.(i)) && b.loads.(i) > 0)
      ~better:(fun i j -> b.loads.(i) > b.loads.(j))
  in
  if repeat >= 0 then Some repeat
  else begin
    let burn =
      argmin_by b
        ~candidate:(fun i -> b.virgin.(i) && b.loads.(i) > 0)
        ~better:(fun i j -> b.loads.(i) > b.loads.(j))
    in
    if burn >= 0 then Some burn else None
  end

let adversary_fresh_first b =
  let burn =
    argmin_by b
      ~candidate:(fun i -> b.virgin.(i) && b.loads.(i) > 0)
      ~better:(fun i j -> b.loads.(i) > b.loads.(j))
  in
  if burn >= 0 then Some burn
  else begin
    let any =
      argmin_by b ~candidate:(fun i -> b.loads.(i) > 0)
        ~better:(fun i j -> b.loads.(i) > b.loads.(j))
    in
    if any >= 0 then Some any else None
  end

let adversary_random rng b =
  let nonempty = ref [] in
  Array.iteri (fun i l -> if l > 0 then nonempty := i :: !nonempty) b.loads;
  match !nonempty with [] -> None | xs -> Some (Rng.pick rng (Array.of_list xs))

let adversaries =
  [
    ("greedy", "the optimal Lemma 4 shape: repeat non-virgin urns first");
    ("fresh-first", "always burns a virgin urn when possible (anti-greedy)");
    ("random", "uniform among non-empty urns");
  ]

let adversary_of_name ~rng name =
  match name with
  | "greedy" -> adversary_greedy
  | "fresh-first" -> adversary_fresh_first
  | "random" -> adversary_random rng
  | other -> invalid_arg ("Urn_game.adversary_of_name: unknown adversary " ^ other)

let bound ~delta ~k =
  let kf = float_of_int k in
  (kf *. Float.min (Mathx.log_nat delta) (Mathx.log_nat k)) +. (2.0 *. kf)

let step b adversary player =
  if finished b then None
  else
    match adversary b with
    | None -> None
    | Some a ->
        if b.loads.(a) <= 0 then failwith "Urn_game.step: adversary picked an empty urn";
        b.virgin.(a) <- false;
        b.loads.(a) <- b.loads.(a) - 1;
        let dest = player b ~forbidden:a in
        if dest < 0 || dest >= k b then
          failwith "Urn_game.step: player picked an invalid urn";
        b.loads.(dest) <- b.loads.(dest) + 1;
        b.steps <- b.steps + 1;
        Some (a, dest)

let play ?max_steps b adversary player =
  let limit =
    match max_steps with
    | Some m -> m
    | None -> (4 * int_of_float (bound ~delta:b.delta ~k:(k b))) + 4 * k b + 100
  in
  let continue = ref true in
  while !continue do
    if b.steps >= limit then failwith "Urn_game.play: step limit exceeded"
    else
      match step b adversary player with
      | None -> continue := false
      | Some _ -> ()
  done;
  b.steps

let render b =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i load ->
      Buffer.add_string buf
        (Printf.sprintf "urn %2d %c |%s\n" i
           (if b.virgin.(i) then 'v' else ' ')
           (String.make load '*')))
    b.loads;
  Buffer.contents buf

let dp_value ~delta ~k =
  if k < 1 then invalid_arg "Urn_game.dp_value: k must be >= 1";
  if delta < 1 then invalid_arg "Urn_game.dp_value: delta must be >= 1";
  (* r.(u).(n) = R(N = n, u): longest continuation from a balanced
     configuration with u virgin urns holding n balls in total. *)
  let r = Array.make_matrix (k + 1) (k + 1) 0 in
  for u = 1 to k do
    for n = k downto 0 do
      if (delta * u) - n > 0 then begin
        let best = ref 0 in
        if n < k then best := max !best (1 + r.(u).(n + 1));
        if n >= 1 then begin
          let hi = n - Mathx.ceil_div n u + 1 in
          let lo = n - (n / u) + 1 in
          best := max !best (1 + r.(u - 1).(hi));
          best := max !best (1 + r.(u - 1).(lo))
        end;
        r.(u).(n) <- !best
      end
    done
  done;
  r.(k).(k)
