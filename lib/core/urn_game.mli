(** The two-player zero-sum balls-in-urns game of Section 3.

    The board is [k] urns holding [k] balls in total (initially one each).
    Each step, the adversary picks a ball from a non-empty urn, then the
    player moves it to an urn of its choice. [U_t] is the set of urns the
    adversary has never picked from ("virgin" urns below); the game stops
    as soon as every urn of [U_t] holds at least [delta] balls (for
    [delta >= k], as soon as [U_t] is empty).

    Theorem 3: moving each ball to the least-loaded virgin urn ends the
    game within [k * min(log delta, log k) + 2k] steps, whatever the
    adversary does. The exact optimal game value is computable by the
    paper's [R(N, u)] recursion ({!dp_value}). *)

type board

val create : delta:int -> k:int -> board
(** Fresh board: [k] urns, one ball each, all virgin. *)

val create_custom : delta:int -> loads:int array -> virgin:bool array -> board
(** Arbitrary initial condition — Section 3.2 uses one non-virgin urn with
    [k - u] balls plus [u] virgin urns with one ball each.
    @raise Invalid_argument on negative loads or mismatched lengths. *)

val k : board -> int
val delta : board -> int
val load : board -> int -> int
val is_virgin : board -> int -> bool
val steps : board -> int

val virgin_count : board -> int
val virgin_balls : board -> int
(** [u_t] and [N_t] of the analysis. *)

val finished : board -> bool
(** The stopping condition above. *)

type player = board -> forbidden:int -> int
(** Chooses the destination urn [b_t]; [forbidden] is the urn the adversary
    just picked from ([a_t] is no longer virgin when the player moves). *)

type adversary = board -> int option
(** Chooses a non-empty urn [a_t], or resigns with [None] (resigning never
    helps the adversary; it exists so bounded strategies can stop). *)

(** {2 Strategies} *)

val player_least_loaded : player
(** The paper's strategy: least-loaded virgin urn (ties to the smallest
    index); falls back to the least-loaded urn overall when no virgin urn
    remains. *)

val player_most_loaded : player
(** Anti-strategy, for comparison in the ablation bench. *)

val player_random : Bfdn_util.Rng.t -> player

val adversary_greedy : adversary
(** The optimal shape from Lemma 4: repeat a non-virgin urn whenever one
    holds a ball (option (a)); otherwise spend the fullest virgin urn
    (option (b)). *)

val adversary_fresh_first : adversary
(** Always burns a virgin urn when possible — the anti-greedy. *)

val adversary_random : Bfdn_util.Rng.t -> adversary

val adversaries : (string * string) list
(** [(name, doc)] for every named adversary strategy — the dispatch
    table behind the CLI's [game --adversary] enum. *)

val adversary_of_name : rng:Bfdn_util.Rng.t -> string -> adversary
(** Resolve a name from {!adversaries}; [rng] is consumed only by the
    randomized strategy. @raise Invalid_argument on an unknown name. *)

(** {2 Play} *)

val step : board -> adversary -> player -> (int * int) option
(** Play a single move: adversary picks [a_t], player places the ball on
    [b_t]; returns [(a_t, b_t)], or [None] if the game is finished or the
    adversary resigns. *)

val play : ?max_steps:int -> board -> adversary -> player -> int
(** Run until {!finished} or adversary resignation; returns the number of
    steps. [max_steps] defaults to a value far above the Theorem 3 bound
    and raises [Failure] when exceeded (a violated theorem). *)

val bound : delta:int -> k:int -> float
(** The Theorem 3 bound [k * min(log delta, log k) + 2k]. *)

val render : board -> string
(** One-line-per-urn ASCII rendering ([*] = ball, [v] marks virgin urns)
    for demos. *)

(** {2 Exact game value} *)

val dp_value : delta:int -> k:int -> int
(** Optimal game length under the balancing player, by the [R(N, u)]
    dynamic program of the proof of Theorem 3 (configurations are fully
    described by [(N_t, u_t)] under the balancing player). O(k^2) states. *)
