(** BFDN in the continuous-time model ({!Bfdn_sim.Async_env}) — the
    slotted-time relaxation the paper's Remark 8 proposes as an extension.

    The rules are Algorithm 1's, re-read event-by-event: a robot asked at
    the root is re-anchored to a least-loaded minimum-depth open node and
    walks there; elsewhere it crosses an adjacent unclaimed dangling edge
    if one exists and heads up otherwise. In-transit discoveries are
    {e claimed}, which plays the role of the same-round "selected" set.

    No runtime guarantee is claimed (none exists in the paper); the
    experiments measure makespan against the work lower bound
    [2(n-1) / Σ speeds] and the depth bound [2D / max speed]. *)

type t

val make : Bfdn_sim.Async_env.t -> t

val decide : t -> Bfdn_sim.Async_env.decide
(** To be passed to {!Bfdn_sim.Async_env.run}. *)

val notify_restart : t -> Bfdn_sim.Async_env.robot -> unit
(** Discard the robot's route state after a crash-with-restart teleport
    to the root (to be passed as [on_restart] to
    {!Bfdn_sim.Exec_env.of_async}): the stale stack described a walk
    from the crash site, not from the root. *)

val reanchors_total : t -> int
