module Aenv = Bfdn_sim.Async_env
module Partial_tree = Bfdn_sim.Partial_tree

type rstate = { mutable anchor : int; mutable stack : int list }

type t = {
  env : Aenv.t;
  robots : rstate array;
  anchor_load : int array;
  (* Monotone per-node cursor; claimed dangling ports may be skipped with
     commitment since their traversal always completes (no vetoes in the
     continuous-time model). *)
  dangle_cursor : int array;
  mutable reanchors : int;
}

let make env =
  let view = Aenv.view env in
  let root = Partial_tree.root view in
  let k = Aenv.k env in
  let n = Aenv.capacity env in
  {
    env;
    robots = Array.init k (fun _ -> { anchor = root; stack = [] });
    anchor_load =
      (let load = Array.make n 0 in
       load.(root) <- k;
       load);
    dangle_cursor = Array.make n 0;
    reanchors = 0;
  }

let next_unclaimed t pos =
  let view = Aenv.view t.env in
  let nports = Partial_tree.num_ports view pos in
  let rec scan () =
    let c = t.dangle_cursor.(pos) in
    if c >= nports then None
    else
      match Partial_tree.port view pos c with
      | Partial_tree.Dangling ->
          if Aenv.claimed t.env pos c then begin
            t.dangle_cursor.(pos) <- c + 1;
            scan ()
          end
          else Some c
      | Partial_tree.To_parent | Partial_tree.Child _ ->
          t.dangle_cursor.(pos) <- c + 1;
          scan ()
  in
  scan ()

let reanchor t i =
  let view = Aenv.view t.env in
  let r = t.robots.(i) in
  t.anchor_load.(r.anchor) <- t.anchor_load.(r.anchor) - 1;
  match Partial_tree.open_nodes_at_min_depth view with
  | [] ->
      t.anchor_load.(Partial_tree.root view) <-
        t.anchor_load.(Partial_tree.root view) + 1;
      r.anchor <- Partial_tree.root view;
      r.stack <- [];
      false
  | candidates ->
      let best =
        List.fold_left
          (fun best v ->
            if
              t.anchor_load.(v) < t.anchor_load.(best)
              || (t.anchor_load.(v) = t.anchor_load.(best) && v < best)
            then v
            else best)
          (List.hd candidates) candidates
      in
      r.anchor <- best;
      t.anchor_load.(best) <- t.anchor_load.(best) + 1;
      r.stack <- Partial_tree.ports_from_root view best;
      t.reanchors <- t.reanchors + 1;
      true

let decide t env i =
  let view = Aenv.view env in
  let root = Partial_tree.root view in
  let r = t.robots.(i) in
  let pos = Aenv.position env i in
  if pos = root && r.stack = [] && not (reanchor t i) then Aenv.Park
  else begin
    match r.stack with
    | p :: rest ->
        r.stack <- rest;
        Aenv.Go_port p
    | [] -> (
        match next_unclaimed t pos with
        | Some p -> Aenv.Go_port p
        | None -> if pos = root then Aenv.Park else Aenv.Go_up)
  end

let decide t = decide t

let notify_restart t i =
  (* The replacement robot materializes at the root: its route state died
     with the crashed one. Dropping the stack means the next [decide]
     lands in the [pos = root && stack = []] branch and reanchors. *)
  let view = Aenv.view t.env in
  let root = Partial_tree.root view in
  let r = t.robots.(i) in
  t.anchor_load.(r.anchor) <- t.anchor_load.(r.anchor) - 1;
  r.anchor <- root;
  t.anchor_load.(root) <- t.anchor_load.(root) + 1;
  r.stack <- []

let reanchors_total t = t.reanchors
