module Genv = Bfdn_graphs.Graph_env

type rstate = {
  mutable anchor : int;
  mutable stack : int list; (* ports left to traverse towards the anchor *)
}

type t = {
  env : Genv.t;
  robots : rstate array;
  anchor_load : int array;
  (* Monotone per-node cursor over unknown ports: tree/closed states are
     absorbing, and unknown ports selected this round resolve when the
     round is applied. *)
  cursor : int array;
  selected : (int * int, unit) Hashtbl.t;
  mutable reanchors : int;
}

let make env =
  let n = Genv.oracle_n_nodes env in
  let origin = Genv.origin env in
  {
    env;
    robots = Array.init (Genv.k env) (fun _ -> { anchor = origin; stack = [] });
    anchor_load =
      (let a = Array.make n 0 in
       a.(origin) <- Genv.k env;
       a);
    cursor = Array.make n 0;
    selected = Hashtbl.create 16;
    reanchors = 0;
  }

let reanchors_total t = t.reanchors

let next_unknown t pos =
  let nports = Genv.num_ports t.env pos in
  let rec scan c ~commit =
    if c >= nports then None
    else
      match Genv.port t.env pos c with
      | Genv.Unknown ->
          if Hashtbl.mem t.selected (pos, c) then scan (c + 1) ~commit:false
          else Some c
      | Genv.Tree | Genv.Closed ->
          if commit then t.cursor.(pos) <- c + 1;
          scan (c + 1) ~commit
  in
  scan t.cursor.(pos) ~commit:true

let reanchor t i =
  let r = t.robots.(i) in
  t.anchor_load.(r.anchor) <- t.anchor_load.(r.anchor) - 1;
  let v =
    match Genv.open_nodes_at_min_dist t.env with
    | [] -> Genv.origin t.env
    | candidates ->
        List.fold_left
          (fun best v ->
            if
              t.anchor_load.(v) < t.anchor_load.(best)
              || (t.anchor_load.(v) = t.anchor_load.(best) && v < best)
            then v
            else best)
          (List.hd candidates) candidates
  in
  r.anchor <- v;
  t.anchor_load.(v) <- t.anchor_load.(v) + 1;
  r.stack <- Genv.ports_from_origin t.env v;
  t.reanchors <- t.reanchors + 1

let select t =
  let origin = Genv.origin t.env in
  let k = Genv.k t.env in
  let moves = Array.make k Genv.Stay in
  Hashtbl.reset t.selected;
  for i = 0 to k - 1 do
    let r = t.robots.(i) in
    let pos = Genv.position t.env i in
    if not (Genv.allowed t.env i) then
      (* Crashed robot: leave its route state untouched — popping the
         stack for a robot the environment will pin in place would
         desynchronize it from its route. A restarted robot reappears at
         the origin, where the [pos = origin] branch below discards the
         stale stack by reanchoring. *)
      moves.(i) <- Genv.Stay
    else if Genv.needs_backtrack t.env i then moves.(i) <- Genv.Back
    else begin
      if pos = origin then reanchor t i;
      match r.stack with
      | p :: rest ->
          r.stack <- rest;
          moves.(i) <- Genv.Via_port p
      | [] -> (
          match next_unknown t pos with
          | Some p ->
              Hashtbl.replace t.selected (pos, p) ();
              moves.(i) <- Genv.Via_port p
          | None ->
              if pos <> origin then begin
                match Genv.tree_parent t.env pos with
                | Some (_, port_up) -> moves.(i) <- Genv.Via_port port_up
                | None -> ()
              end)
    end
  done;
  moves

let finished t = Genv.fully_explored t.env && Genv.all_at_origin t.env

let default_max_rounds env =
  (6 * Genv.oracle_n_edges env * (Genv.oracle_radius env + 2)) + 100

let exec_env t =
  let env = t.env in
  let pending = ref [||] in
  {
    Bfdn_sim.Exec_env.kind = "graph";
    k = Genv.k env;
    round = (fun () -> Genv.round env);
    select = (fun () -> pending := select t);
    apply = (fun () -> Genv.apply env !pending);
    finished = (fun () -> finished t);
    round_limit = (fun () -> default_max_rounds env);
    explored = (fun () -> Genv.fully_explored env);
    at_home = (fun () -> Genv.all_at_origin env);
    moves_total = (fun () -> Genv.moves_total env);
    edge_events = (fun () -> Genv.traversed_edges env);
    positions = (fun () -> Genv.positions env);
    frame =
      (fun () ->
        {
          Bfdn_sim.Trace.round = Genv.round env;
          positions = Genv.positions env;
          explored = Genv.num_explored env;
          dangling = Genv.unknown_ports_total env;
        });
    render =
      (fun () ->
        Printf.sprintf "round %d: explored %d/%d nodes, %d unknown ports\n"
          (Genv.round env) (Genv.num_explored env) (Genv.oracle_n_nodes env)
          (Genv.unknown_ports_total env));
  }

type result = {
  rounds : int;
  explored : bool;
  at_origin : bool;
  closed_edges : int;
  hit_round_limit : bool;
}

let run ?max_rounds t =
  let r = Bfdn_sim.Exec_env.run ?max_rounds (exec_env t) in
  {
    rounds = r.Bfdn_sim.Runner.rounds;
    explored = r.Bfdn_sim.Runner.explored;
    at_origin = r.Bfdn_sim.Runner.at_root;
    closed_edges = Genv.closed_edges t.env;
    hit_round_limit = r.Bfdn_sim.Runner.hit_round_limit;
  }
